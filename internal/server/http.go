package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"orthoq"
	"orthoq/internal/sql/types"
)

// statusClientClosedRequest is the de-facto status (nginx's 499) for
// "the client disconnected before the response was ready".
const statusClientClosedRequest = 499

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error        string `json:"error"`
	Class        string `json:"class"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// classify maps an error onto its HTTP status and taxonomy class.
// Admission rejections additionally carry a Retry-After hint.
func classify(err error) (status int, class string, retryAfter time.Duration) {
	var adm *AdmissionError
	switch {
	case errors.As(err, &adm):
		return http.StatusServiceUnavailable, "admission", adm.RetryAfter
	case errors.Is(err, ErrAdmission):
		return http.StatusServiceUnavailable, "admission", 0
	case errors.Is(err, ErrSessionCap):
		return http.StatusTooManyRequests, "session_cap", 0
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found", 0
	case errors.Is(err, ErrTxnWrite):
		return http.StatusConflict, "txn_write", 0
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable, "closed", 0
	case errors.Is(err, ErrNotReady):
		return http.StatusServiceUnavailable, "not_ready", 0
	case errors.Is(err, orthoq.ErrTimeout):
		return http.StatusGatewayTimeout, "timeout", 0
	case errors.Is(err, orthoq.ErrCanceled):
		return statusClientClosedRequest, "canceled", 0
	case errors.Is(err, orthoq.ErrRowBudget):
		return http.StatusUnprocessableEntity, "row_budget", 0
	case errors.Is(err, orthoq.ErrMemBudget):
		return http.StatusUnprocessableEntity, "mem_budget", 0
	case errors.Is(err, orthoq.ErrInternal):
		return http.StatusInternalServerError, "internal", 0
	default:
		return http.StatusBadRequest, "invalid", 0
	}
}

// writeError sends the classified error as JSON.
func writeError(w http.ResponseWriter, err error) {
	status, class, retry := classify(err)
	body := errorBody{Error: err.Error(), Class: class}
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retry+time.Second-1)/time.Second), 10))
		body.RetryAfterMS = retry.Milliseconds()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeJSON sends v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody decodes the request body into v with json.Number
// preserved (so int64 values round-trip exactly).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// datumJSON renders a datum as its natural JSON value: null, bool,
// number, or string (dates as "2006-01-02").
func datumJSON(d types.Datum) any {
	if d.IsNull() {
		return nil
	}
	switch d.Kind() {
	case types.Bool:
		return d.Bool()
	case types.Int:
		return d.Int()
	case types.Float:
		return d.Float()
	case types.String:
		return d.Str()
	case types.Date:
		return d.String()
	default:
		return d.String()
	}
}

// datumFromJSON converts a decoded JSON value to a datum of the given
// column kind.
func datumFromJSON(v any, kind types.Kind) (types.Datum, error) {
	if v == nil {
		return types.Null(kind), nil
	}
	switch kind {
	case types.Bool:
		b, ok := v.(bool)
		if !ok {
			return types.Datum{}, fmt.Errorf("want bool, got %T", v)
		}
		return types.NewBool(b), nil
	case types.Int:
		n, ok := v.(json.Number)
		if !ok {
			return types.Datum{}, fmt.Errorf("want number, got %T", v)
		}
		i, err := n.Int64()
		if err != nil {
			return types.Datum{}, fmt.Errorf("bad int %q", n.String())
		}
		return types.NewInt(i), nil
	case types.Float:
		n, ok := v.(json.Number)
		if !ok {
			return types.Datum{}, fmt.Errorf("want number, got %T", v)
		}
		f, err := n.Float64()
		if err != nil {
			return types.Datum{}, fmt.Errorf("bad float %q", n.String())
		}
		return types.NewFloat(f), nil
	case types.String:
		s, ok := v.(string)
		if !ok {
			return types.Datum{}, fmt.Errorf("want string, got %T", v)
		}
		return types.NewString(s), nil
	case types.Date:
		s, ok := v.(string)
		if !ok {
			return types.Datum{}, fmt.Errorf("want date string, got %T", v)
		}
		return types.DateFromString(s)
	default:
		return types.Datum{}, fmt.Errorf("unsupported column kind %s", kind)
	}
}

// parseKind maps a wire type name to a datum kind.
func parseKind(s string) (types.Kind, error) {
	switch s {
	case "bool":
		return types.Bool, nil
	case "int":
		return types.Int, nil
	case "float":
		return types.Float, nil
	case "string":
		return types.String, nil
	case "date":
		return types.Date, nil
	}
	return types.Unknown, fmt.Errorf("unknown column type %q (want bool, int, float, string, or date)", s)
}

// Handler returns the server's HTTP front end. All request and
// response bodies are JSON; /query streams JSON lines.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", s.handleCreateSession)
	mux.HandleFunc("GET /session/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /session/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /session/{id}/begin", s.handleTxn((*Session).Begin))
	mux.HandleFunc("POST /session/{id}/commit", s.handleTxn((*Session).Commit))
	mux.HandleFunc("POST /session/{id}/rollback", s.handleTxn((*Session).Rollback))
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /cursor/{id}", s.handleCursorFetch)
	mux.HandleFunc("DELETE /cursor/{id}", s.handleCursorClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /schema", s.handleSchema)
	// Readiness gate: while the database is opening (recovery replaying
	// the log) every data-path request is rejected with 503 not_ready.
	// The probes stay open — /healthz answers liveness throughout, and
	// /readyz reports the gate itself.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			mux.ServeHTTP(w, r)
			return
		}
		if err := s.Ready(); err != nil {
			writeError(w, err)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// sessionResponse is the /session response shape.
type sessionResponse struct {
	Session string        `json:"session"`
	Config  SessionConfig `json:"config"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if r.ContentLength != 0 {
		if err := decodeBody(r, &cfg); err != nil {
			writeError(w, err)
			return
		}
	}
	sess, err := s.CreateSession(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, sessionResponse{Session: sess.id, Config: sess.cfg})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	sess.mu.Lock()
	info := struct {
		Session  string        `json:"session"`
		Config   SessionConfig `json:"config"`
		InFlight int           `json:"in_flight"`
		Cursors  int           `json:"cursors"`
		Stmts    int           `json:"stmts"`
		Txn      bool          `json:"txn"`
	}{sess.id, sess.cfg, sess.inflight, len(sess.cursors), len(sess.stmts), sess.snap != nil}
	sess.mu.Unlock()
	writeJSON(w, info)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"closed": true})
}

func (s *Server) handleTxn(op func(*Session) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		if err := op(sess); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	}
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		SQL     string `json:"sql"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sess, err := s.Session(req.Session)
	if err != nil {
		writeError(w, err)
		return
	}
	id, err := sess.Prepare(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"stmt": id})
}

// queryRequest is the /query request shape: sql text or a prepared
// statement handle, optionally as a server-side cursor.
type queryRequest struct {
	Session string `json:"session,omitempty"`
	SQL     string `json:"sql,omitempty"`
	Stmt    string `json:"stmt,omitempty"`
	// Cursor opens a server-side streaming cursor instead of returning
	// rows inline; fetch batches via POST /cursor/{id}.
	Cursor bool `json:"cursor,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if (req.SQL == "") == (req.Stmt == "") {
		writeError(w, errors.New("exactly one of sql or stmt is required"))
		return
	}

	// Resolve the session (optional for plain sql queries: a
	// sessionless query runs under the server-wide defaults).
	var sess *Session
	var err error
	if req.Session != "" {
		sess, err = s.Session(req.Session)
	} else if req.Stmt != "" || req.Cursor {
		err = errors.New("stmt and cursor queries require a session")
	}
	if err != nil {
		writeError(w, err)
		return
	}

	// Per-session concurrency slot, then global admission.
	slot := func() {}
	reserve := s.adm.cfg.DefaultReserve
	if sess != nil {
		slot, err = sess.acquire()
		if err != nil {
			writeError(w, err)
			return
		}
		reserve = sess.reserve()
	}
	release, queued, err := s.adm.Admit(r.Context(), reserve)
	if err != nil {
		slot()
		writeError(w, err)
		return
	}

	var snap *orthoq.Snapshot
	cfg := orthoq.DefaultConfig()
	cfg.QueryLog = s.cfg.QueryLog
	if sess != nil {
		snap = sess.snapshot()
		cfg = sess.config()
		defer sess.touch()
	}
	cfg.Queued = queued

	if req.Cursor {
		s.openCursor(w, sess, req, cfg, snap, slot, release)
		return
	}

	// Inline query: run to completion (admission reservation released
	// on every path, including panics inside the engine's containment),
	// then stream the materialized rows as JSON lines.
	defer release()
	defer slot()
	var rows *orthoq.Rows
	if req.Stmt != "" {
		var st *orthoq.Stmt
		if st, err = sess.stmt(req.Stmt); err == nil {
			rows, err = st.RunSnapshot(r.Context(), snap)
		}
	} else {
		rows, err = s.db.QuerySnapshot(r.Context(), req.SQL, cfg, snap)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeRowsJSONL(w, rows, queued)
}

// writeRowsJSONL streams a materialized result as JSON lines: a
// columns header, one line per row, and a trailer with run stats.
func writeRowsJSONL(w http.ResponseWriter, rows *orthoq.Rows, queued time.Duration) {
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]any{"columns": rows.Columns})
	flusher, _ := w.(http.Flusher)
	line := make([]any, 0, len(rows.Columns))
	for _, row := range rows.Data {
		line = line[:0]
		for _, d := range row {
			line = append(line, datumJSON(d))
		}
		_ = enc.Encode(map[string]any{"row": line})
	}
	trailer := map[string]any{
		"done":       true,
		"rows":       len(rows.Data),
		"elapsed_us": rows.Elapsed.Microseconds(),
		"cache":      rows.Cache,
	}
	if queued > 0 {
		trailer["queued_us"] = queued.Microseconds()
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// openCursor starts a server-side streaming cursor. The stream's
// context is detached from the creating request (the cursor outlives
// it); the cursor keeps the session slot and admission reservation
// until it is closed — by the client, by exhaustion, or by the idle
// reaper.
func (s *Server) openCursor(w http.ResponseWriter, sess *Session, req queryRequest,
	cfg orthoq.Config, snap *orthoq.Snapshot, slot, release func()) {

	if req.Stmt != "" {
		slot()
		release()
		writeError(w, errors.New("cursor queries take sql, not stmt"))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	st, err := s.db.QueryStreamSnapshot(ctx, req.SQL, cfg, snap)
	if err != nil {
		cancel()
		slot()
		release()
		writeError(w, err)
		return
	}
	cu, err := sess.addCursor(st, cancel, slot, release)
	if err != nil {
		_ = st.Close()
		cancel()
		slot()
		release()
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"cursor": cu.id, "session": sess.id, "columns": cu.cols})
}

func (s *Server) handleCursorFetch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Limit   int    `json:"limit,omitempty"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	cu, err := s.findCursor(req.Session, r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	rows, done, err := cu.fetch(req.Limit)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([][]any, len(rows))
	for i, row := range rows {
		line := make([]any, len(row))
		for j, d := range row {
			line[j] = datumJSON(d)
		}
		out[i] = line
	}
	writeJSON(w, map[string]any{"rows": out, "done": done})
}

func (s *Server) handleCursorClose(w http.ResponseWriter, r *http.Request) {
	cu, err := s.findCursor(r.URL.Query().Get("session"), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	cu.close(false)
	writeJSON(w, map[string]bool{"closed": true})
}

func (s *Server) findCursor(session, id string) (*cursor, error) {
	sess, err := s.Session(session)
	if err != nil {
		return nil, err
	}
	return sess.cursor(id)
}

// execRequest is the /exec request shape: exactly one of the DDL/DML
// operations.
type execRequest struct {
	Session     string `json:"session,omitempty"`
	CreateTable *struct {
		Name    string `json:"name"`
		Columns []struct {
			Name     string `json:"name"`
			Type     string `json:"type"`
			Nullable bool   `json:"nullable,omitempty"`
		} `json:"columns"`
		Key     []int `json:"key"`
		Indexes []struct {
			Name    string `json:"name"`
			Cols    []int  `json:"cols"`
			Unique  bool   `json:"unique,omitempty"`
			Ordered bool   `json:"ordered,omitempty"`
		} `json:"indexes,omitempty"`
	} `json:"create_table,omitempty"`
	Insert *struct {
		Table string  `json:"table"`
		Rows  [][]any `json:"rows"`
	} `json:"insert,omitempty"`
	Analyze bool `json:"analyze,omitempty"`
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Session != "" {
		sess, err := s.Session(req.Session)
		if err != nil {
			writeError(w, err)
			return
		}
		if sess.inTxn() {
			writeError(w, ErrTxnWrite)
			return
		}
		sess.touch()
	}
	switch {
	case req.CreateTable != nil:
		ct := req.CreateTable
		t := &orthoq.Table{Name: ct.Name, Key: ct.Key}
		for _, c := range ct.Columns {
			kind, err := parseKind(c.Type)
			if err != nil {
				writeError(w, err)
				return
			}
			t.Columns = append(t.Columns, orthoq.Column{Name: c.Name, Type: kind, Nullable: c.Nullable})
		}
		for _, idx := range ct.Indexes {
			t.Indexes = append(t.Indexes, orthoq.Index{
				Name: idx.Name, Cols: idx.Cols, Unique: idx.Unique, Ordered: idx.Ordered})
		}
		if err := s.db.CreateTable(t); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"created": t.Name})
	case req.Insert != nil:
		schema, ok := s.db.Catalog().Table(req.Insert.Table)
		if !ok {
			writeError(w, fmt.Errorf("%w: table %s", ErrNotFound, req.Insert.Table))
			return
		}
		rows := make([]orthoq.Row, 0, len(req.Insert.Rows))
		for ri, raw := range req.Insert.Rows {
			if len(raw) != len(schema.Columns) {
				writeError(w, fmt.Errorf("row %d: want %d columns, got %d", ri, len(schema.Columns), len(raw)))
				return
			}
			row := make(orthoq.Row, len(raw))
			for ci, v := range raw {
				d, err := datumFromJSON(v, schema.Columns[ci].Type)
				if err != nil {
					writeError(w, fmt.Errorf("row %d column %s: %w", ri, schema.Columns[ci].Name, err))
					return
				}
				row[ci] = d
			}
			rows = append(rows, row)
		}
		if err := s.db.Insert(req.Insert.Table, rows...); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"inserted": len(rows)})
	case req.Analyze:
		s.db.Analyze()
		writeJSON(w, map[string]bool{"analyzed": true})
	default:
		writeError(w, errors.New("exec wants create_table, insert, or analyze"))
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session,omitempty"`
		SQL     string `json:"sql"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	cfg := orthoq.DefaultConfig()
	if req.Session != "" {
		sess, err := s.Session(req.Session)
		if err != nil {
			writeError(w, err)
			return
		}
		cfg = sess.config()
		sess.touch()
	}
	plan, err := s.db.Explain(req.SQL, cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"plan": plan})
}

// handleHealthz is the liveness probe: it answers ok whenever the
// process can serve HTTP at all — including while recovery is still
// replaying or the server is draining. Only Close makes it fail (the
// process is on its way out). Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.closed:
		writeError(w, ErrServerClosed)
	default:
		writeJSON(w, map[string]string{"status": "ok"})
	}
}

// handleReadyz is the readiness probe: 200 only when the database is
// open and the server is neither draining nor closed — the signal load
// balancers use to route (or stop routing) traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.closed:
		writeError(w, ErrServerClosed)
		return
	default:
	}
	if err := s.Ready(); err != nil {
		writeError(w, err)
		return
	}
	if s.draining.Load() {
		writeError(w, fmt.Errorf("%w: draining", ErrNotReady))
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Metrics())
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	type colInfo struct {
		Name     string `json:"name"`
		Type     string `json:"type"`
		Nullable bool   `json:"nullable,omitempty"`
	}
	type tableInfo struct {
		Name    string    `json:"name"`
		Columns []colInfo `json:"columns"`
		Rows    int       `json:"rows"`
	}
	var out []tableInfo
	for _, t := range s.db.Catalog().Tables() {
		ti := tableInfo{Name: t.Name}
		for _, c := range t.Columns {
			ti.Columns = append(ti.Columns, colInfo{c.Name, c.Type.String(), c.Nullable})
		}
		if n, ok := s.db.TableRowCount(t.Name); ok {
			ti.Rows = n
		}
		out = append(out, ti)
	}
	writeJSON(w, map[string]any{"tables": out})
}
