package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"orthoq"
)

// Liveness vs readiness while a durable open is still replaying:
// /healthz answers 200 throughout, /readyz and every data-path
// endpoint answer 503 not_ready, and the gate lifts the moment the
// open completes.
func TestReadinessGateDuringOpen(t *testing.T) {
	release := make(chan struct{})
	db := newMemDB(t, 5)
	srv := NewOpening(func() (*orthoq.DB, error) {
		<-release
		return db, nil
	}, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	s := &testServer{srv: srv, ts: ts}

	if resp, data := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while opening: %d %s, want 200", resp.StatusCode, data)
	}
	resp, data := s.get(t, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while opening: %d %s, want 503", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "not_ready" {
		t.Errorf("/readyz class = %q, want not_ready", got)
	}
	resp, data = s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("data path while opening: %d %s, want 503", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "not_ready" {
		t.Errorf("data-path class = %q, want not_ready", got)
	}
	if srv.DB() != nil {
		t.Error("DB() non-nil while still opening")
	}
	// Metrics is exported API reachable before the open completes; it
	// must serve the server-mode section without touching the absent
	// engine.
	if m := srv.Metrics(); m.Server == nil {
		t.Error("Metrics() while opening lacks the server section")
	}

	close(release)
	if err := srv.WaitReady(); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if resp, data := s.get(t, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after open: %d %s, want 200", resp.StatusCode, data)
	}
	if resp, data := s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after open: %d %s, want 200", resp.StatusCode, data)
	}
}

// A failed open leaves the server permanently unready, with the
// failure visible on /readyz — alive, but never routed to.
func TestReadinessOpenFailure(t *testing.T) {
	srv := NewOpening(func() (*orthoq.DB, error) {
		return nil, errors.New("disk on fire")
	}, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	s := &testServer{srv: srv, ts: ts}

	if err := srv.WaitReady(); err == nil || !errors.Is(err, ErrNotReady) {
		t.Fatalf("WaitReady after failed open: %v, want ErrNotReady", err)
	}
	resp, data := s.get(t, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after failed open: %d, want 503", resp.StatusCode)
	}
	if got := string(data); !strings.Contains(got, "disk on fire") {
		t.Errorf("/readyz body %q does not carry the open failure", got)
	}
	if resp, _ := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after failed open: %d, want 200 (still alive)", resp.StatusCode)
	}
	if srv.DB() != nil {
		t.Error("DB() non-nil after failed open")
	}
	if m := srv.Metrics(); m.Server == nil {
		t.Error("Metrics() after failed open lacks the server section")
	}
}

// Drain flips only /readyz: load balancers stop routing, while
// liveness and the data path (in-flight and straggler requests) keep
// working until shutdown.
func TestDrainAffectsOnlyReadyz(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	if resp, _ := s.get(t, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", resp.StatusCode)
	}
	s.srv.Drain()
	resp, data := s.get(t, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", resp.StatusCode)
	}
	if got := errClassOf(t, data); got != "not_ready" {
		t.Errorf("/readyz class during drain = %q, want not_ready", got)
	}
	if resp, _ := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200", resp.StatusCode)
	}
	if resp, data := s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"}); resp.StatusCode != http.StatusOK {
		t.Errorf("straggler query during drain: %d %s, want 200", resp.StatusCode, data)
	}
}
