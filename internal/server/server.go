// Package server is orthoq's server mode: a session layer (per-session
// execution defaults, prepared statements, lightweight read-only
// transactions over pinned snapshots), admission control (global
// concurrency slots, a shared memory pool, and a bounded FIFO queue),
// and an HTTP/JSON wire front end (http.go) over an embedded
// orthoq.DB. See DESIGN.md §13.
package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"orthoq"
	"orthoq/internal/obs"
)

// Config tunes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Session holds the server-wide per-session execution defaults; a
	// session's own SessionConfig overrides them field by field.
	Session SessionConfig
	// Admission tunes the global admission controller.
	Admission AdmissionConfig
	// MaxSessions caps concurrently open sessions (0 = default 256).
	MaxSessions int
	// SessionIdleTimeout closes sessions with no activity and no
	// running queries (0 = default 10m; negative = never).
	SessionIdleTimeout time.Duration
	// CursorIdleTimeout closes cursors their client stopped fetching
	// (0 = default 1m; negative = never). Reaping a cursor releases its
	// session slot and admission reservation — the backstop against
	// abandoned-stream resource leaks.
	CursorIdleTimeout time.Duration
	// ReapInterval is the reaper's scan period (0 = default 5s).
	ReapInterval time.Duration
	// QueryLog, when non-nil, receives the engine's JSONL query-log
	// records for every query run through the server (with session=
	// and queued_us labels).
	QueryLog io.Writer
	// DisableResultCache turns the semantic result cache off
	// server-wide (sessions cannot re-enable it). By default server
	// mode enables the cache for every session — wire traffic is where
	// near-duplicate queries concentrate; a session opts out with
	// SessionConfig.ResultCache=false.
	DisableResultCache bool
	// ResultCacheBytes caps the result cache footprint. 0 draws a
	// quarter of the admission memory pool (Admission.PoolBytes) when
	// one is configured, else the engine default (32 MiB). Whatever the
	// cache is granted is subtracted from the admission pool: cached
	// materializations are engine memory too.
	ResultCacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.Session.MaxConcurrent == 0 {
		c.Session.MaxConcurrent = 8
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.SessionIdleTimeout == 0 {
		c.SessionIdleTimeout = 10 * time.Minute
	}
	if c.CursorIdleTimeout == 0 {
		c.CursorIdleTimeout = time.Minute
	}
	if c.ReapInterval == 0 {
		c.ReapInterval = 5 * time.Second
	}
	return c
}

// Server wraps an orthoq.DB with sessions, admission control, and the
// HTTP front end. Create with New, serve its Handler(), Close when
// done. All methods are safe for concurrent use.
type Server struct {
	db  *orthoq.DB
	cfg Config
	adm *admission
	sm  obs.ServerMetrics
	// rcBytes is the result-cache byte cap carved out of the admission
	// pool at New (0 = engine default sizing).
	rcBytes int64

	mu       sync.Mutex
	sessions map[string]*Session
	seq      atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Readiness: a server is ready once its database is open (for
	// NewOpening, after recovery finishes) and not draining. Liveness
	// (/healthz) is independent — a replaying or draining server is
	// alive but should receive no new traffic. openDone closing
	// publishes db and openErr (channel happens-before).
	draining atomic.Bool
	openDone chan struct{}
	openErr  error // written before openDone closes
}

// New creates a server over db and starts its idle reaper. The server
// is immediately ready.
func New(db *orthoq.DB, cfg Config) *Server {
	s := newServer(db, cfg)
	close(s.openDone)
	return s
}

// NewOpening creates a server whose database is still opening — the
// durable-open path, where recovery may spend seconds replaying the
// write-ahead log. The server binds and answers liveness immediately;
// every data-path request (and /readyz) is rejected with ErrNotReady
// until open returns. If open fails, the server stays unready forever,
// reporting the failure — the load balancer never routes to it and the
// operator sees the reason on /readyz.
func NewOpening(open func() (*orthoq.DB, error), cfg Config) *Server {
	s := newServer(nil, cfg)
	go func() {
		db, err := open()
		if err != nil {
			s.openErr = fmt.Errorf("%w: open failed: %v", ErrNotReady, err)
		} else {
			s.db = db
		}
		close(s.openDone)
	}()
	return s
}

// Ready reports whether the server can serve queries: nil when the
// database is open, ErrNotReady (with the reason) while recovery is
// still replaying or after a failed open. Draining does not affect
// Ready — in-flight and straggler requests still complete; only
// /readyz advertises the drain.
func (s *Server) Ready() error {
	select {
	case <-s.openDone:
		return s.openErr
	default:
		return fmt.Errorf("%w: database opening (recovery in progress)", ErrNotReady)
	}
}

// WaitReady blocks until the database open completes and returns its
// outcome (nil immediately for servers created with New).
func (s *Server) WaitReady() error {
	<-s.openDone
	return s.openErr
}

// Drain marks the server draining: /readyz starts failing so load
// balancers stop routing new traffic, while everything already here —
// sessions, cursors, in-flight queries — continues to completion. Call
// before Close for a graceful shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
}

func newServer(db *orthoq.DB, cfg Config) *Server {
	s := &Server{
		db:       db,
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*Session),
		closed:   make(chan struct{}),
		openDone: make(chan struct{}),
	}
	adm := s.cfg.Admission
	if !s.cfg.DisableResultCache {
		s.rcBytes = s.cfg.ResultCacheBytes
		if s.rcBytes == 0 && adm.PoolBytes > 0 {
			s.rcBytes = adm.PoolBytes / 4
		}
		// The cache's bytes come out of the same global pool that bounds
		// query working memory, so enabling the cache never raises the
		// server's total memory ceiling.
		if adm.PoolBytes > 0 && s.rcBytes > 0 {
			if s.rcBytes >= adm.PoolBytes {
				s.rcBytes = adm.PoolBytes / 2
			}
			adm.PoolBytes -= s.rcBytes
		}
	}
	s.adm = newAdmission(adm, &s.sm)
	obs.PublishFunc("orthoq_server", func() any { return s.sm.Snapshot() })
	s.wg.Add(1)
	go s.reapLoop()
	return s
}

// DB returns the embedded engine handle (nil while a NewOpening
// server is still opening or after its open failed).
func (s *Server) DB() *orthoq.DB {
	select {
	case <-s.openDone:
		return s.db
	default:
		return nil
	}
}

// Metrics snapshots the engine counters with the server-mode section
// filled in. While a NewOpening server is still opening (or after its
// open failed) the engine section is zero and only the server-mode
// counters are live.
func (s *Server) Metrics() orthoq.MetricsSnapshot {
	var m orthoq.MetricsSnapshot
	if db := s.DB(); db != nil {
		m = db.Metrics()
	}
	sn := s.sm.Snapshot()
	m.Server = &sn
	return m
}

// Close stops the reaper and closes every session (which closes every
// cursor, releasing all admission reservations). Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.wg.Wait()
		s.mu.Lock()
		open := make([]*Session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			open = append(open, sess)
		}
		s.sessions = make(map[string]*Session)
		s.mu.Unlock()
		for _, sess := range open {
			sess.close()
			s.sm.SessionsClosed.Add(1)
			s.sm.SessionsActive.Add(-1)
		}
	})
}

// CreateSession opens a session with the given overrides (zero fields
// take the server-wide defaults).
func (s *Server) CreateSession(cfg SessionConfig) (*Session, error) {
	select {
	case <-s.closed:
		return nil, ErrServerClosed
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, &AdmissionError{
			Reason:     fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions),
			RetryAfter: s.adm.cfg.RetryAfter,
		}
	}
	sess := &Session{
		id:      fmt.Sprintf("s-%d", s.seq.Add(1)),
		srv:     s,
		cfg:     cfg.merge(s.cfg.Session),
		lastUse: time.Now(),
	}
	s.sessions[sess.id] = sess
	s.sm.SessionsOpened.Add(1)
	s.sm.SessionsActive.Add(1)
	return sess, nil
}

// Session looks a session up by handle.
func (s *Server) Session(id string) (*Session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: session %s", ErrNotFound, id)
	}
	return sess, nil
}

// CloseSession closes and unregisters a session; all its cursors
// close with it.
func (s *Server) CloseSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: session %s", ErrNotFound, id)
	}
	sess.close()
	s.sm.SessionsClosed.Add(1)
	s.sm.SessionsActive.Add(-1)
	return nil
}

// reapLoop periodically closes idle cursors and idle sessions. It is
// the goroutine/cursor-leak backstop: a client that opened a streaming
// cursor and vanished would otherwise pin a session slot, an admission
// reservation, and the stream's execution resources forever.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.reap(time.Now())
		}
	}
}

// reap closes cursors idle past CursorIdleTimeout and sessions idle
// past SessionIdleTimeout (skipping sessions with running queries,
// open cursors, or an open transaction).
func (s *Server) reap(now time.Time) {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	for _, sess := range sessions {
		if s.cfg.CursorIdleTimeout > 0 {
			sess.mu.Lock()
			stale := make([]*cursor, 0, len(sess.cursors))
			for _, cu := range sess.cursors {
				cu.mu.Lock()
				if !cu.closed && now.Sub(cu.lastUse) > s.cfg.CursorIdleTimeout {
					stale = append(stale, cu)
				}
				cu.mu.Unlock()
			}
			sess.mu.Unlock()
			for _, cu := range stale {
				cu.close(true)
			}
		}
		if s.cfg.SessionIdleTimeout > 0 {
			sess.mu.Lock()
			idle := !sess.closed && sess.inflight == 0 && len(sess.cursors) == 0 &&
				sess.snap == nil && now.Sub(sess.lastUse) > s.cfg.SessionIdleTimeout
			sess.mu.Unlock()
			if idle {
				_ = s.CloseSession(sess.id)
			}
		}
	}
}
