package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"orthoq"
	"orthoq/internal/sql/types"
)

// newMemDB builds a small in-memory database: table t(id int, val
// float) with n rows, analyzed.
func newMemDB(t *testing.T, n int) *orthoq.DB {
	t.Helper()
	db := orthoq.NewMemory()
	if err := db.CreateTable(&orthoq.Table{
		Name: "t",
		Columns: []orthoq.Column{
			{Name: "id", Type: types.Int},
			{Name: "val", Type: types.Float, Nullable: true},
		},
		Key: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Insert("t", orthoq.Row{types.NewInt(int64(i)), types.NewFloat(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Analyze()
	return db
}

// testServer bundles a server with its in-process HTTP front end.
type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, db *orthoq.DB, cfg Config) *testServer {
	t.Helper()
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &testServer{srv: srv, ts: ts}
}

func (s *testServer) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ts.Client().Post(s.ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func (s *testServer) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := s.ts.Client().Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func (s *testServer) delete(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, s.ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func (s *testServer) newSession(t *testing.T, cfg SessionConfig) string {
	t.Helper()
	resp, data := s.post(t, "/session", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: %d %s", resp.StatusCode, data)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out.Session
}

// queryRows runs an inline /query and parses the JSONL body.
func (s *testServer) queryRows(t *testing.T, session, sql string) (cols []string, rows [][]any, trailer map[string]any) {
	t.Helper()
	resp, data := s.post(t, "/query", map[string]any{"session": session, "sql": sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: %d %s", sql, resp.StatusCode, data)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			break
		}
		switch {
		case line["columns"] != nil:
			for _, c := range line["columns"].([]any) {
				cols = append(cols, c.(string))
			}
		case line["row"] != nil:
			rows = append(rows, line["row"].([]any))
		case line["done"] != nil:
			trailer = line
		}
	}
	if trailer == nil {
		t.Fatalf("query %q: no trailer in %s", sql, data)
	}
	return cols, rows, trailer
}

func errClassOf(t *testing.T, data []byte) string {
	t.Helper()
	var e struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %s: %v", data, err)
	}
	return e.Class
}

func TestQueryInline(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 10), Config{})
	sid := s.newSession(t, SessionConfig{})
	cols, rows, trailer := s.queryRows(t, sid, "select id, val from t where id < 3")
	if len(cols) != 2 || cols[0] != "id" {
		t.Errorf("columns = %v", cols)
	}
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rows))
	}
	if trailer["rows"].(float64) != 3 {
		t.Errorf("trailer rows = %v", trailer["rows"])
	}
}

func TestQuerySessionless(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	_, rows, _ := s.queryRows(t, "", "select count(*) as n from t")
	if len(rows) != 1 || rows[0][0].(float64) != 5 {
		t.Errorf("sessionless count = %v", rows)
	}
}

func TestPrepareAndRun(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 10), Config{})
	sid := s.newSession(t, SessionConfig{})
	resp, data := s.post(t, "/prepare", map[string]string{"session": sid, "sql": "select count(*) as n from t"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %s", resp.StatusCode, data)
	}
	var out struct {
		Stmt string `json:"stmt"`
	}
	json.Unmarshal(data, &out)
	resp, data = s.post(t, "/query", map[string]string{"session": sid, "stmt": out.Stmt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run stmt: %d %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte(`"row":[10]`)) {
		t.Errorf("stmt result missing count row: %s", data)
	}
}

func TestTxnSnapshotIsolation(t *testing.T) {
	db := newMemDB(t, 10)
	s := newTestServer(t, db, Config{})
	sid := s.newSession(t, SessionConfig{})
	if resp, data := s.post(t, "/session/"+sid+"/begin", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("begin: %d %s", resp.StatusCode, data)
	}

	// A write lands while the transaction is open...
	if err := db.Insert("t", orthoq.Row{types.NewInt(100), types.NewFloat(1)}); err != nil {
		t.Fatal(err)
	}
	// ...but the transaction still reads its snapshot.
	_, rows, _ := s.queryRows(t, sid, "select count(*) as n from t")
	if rows[0][0].(float64) != 10 {
		t.Errorf("in-txn count = %v, want 10 (snapshot)", rows[0][0])
	}
	// Sessionless readers see the live data.
	_, rows, _ = s.queryRows(t, "", "select count(*) as n from t")
	if rows[0][0].(float64) != 11 {
		t.Errorf("live count = %v, want 11", rows[0][0])
	}

	if resp, data := s.post(t, "/session/"+sid+"/commit", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, data)
	}
	_, rows, _ = s.queryRows(t, sid, "select count(*) as n from t")
	if rows[0][0].(float64) != 11 {
		t.Errorf("post-commit count = %v, want 11", rows[0][0])
	}
}

func TestTxnWriteRejected(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	sid := s.newSession(t, SessionConfig{})
	s.post(t, "/session/"+sid+"/begin", nil)
	resp, data := s.post(t, "/exec", map[string]any{
		"session": sid,
		"insert":  map[string]any{"table": "t", "rows": [][]any{{99, 1.5}}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-txn write: %d %s, want 409", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "txn_write" {
		t.Errorf("class = %q, want txn_write", got)
	}
	// Rollback unblocks writes.
	s.post(t, "/session/"+sid+"/rollback", nil)
	resp, data = s.post(t, "/exec", map[string]any{
		"session": sid,
		"insert":  map[string]any{"table": "t", "rows": [][]any{{99, 1.5}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rollback write: %d %s", resp.StatusCode, data)
	}
}

func TestAdmissionWireMapping(t *testing.T) {
	// Saturate admission directly, then watch a wire query bounce with
	// 503 + Retry-After + class "admission".
	s := newTestServer(t, newMemDB(t, 5), Config{
		Admission: AdmissionConfig{MaxConcurrent: 1, QueueDepth: -1, RetryAfter: 2 * time.Second},
	})
	rel, _, err := s.srv.adm.Admit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query: %d %s, want 503", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "admission" {
		t.Errorf("class = %q, want admission", got)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	rel()
	if resp, data := s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: %d %s", resp.StatusCode, data)
	}
	if got := s.srv.sm.AdmissionRejects.Load(); got != 1 {
		t.Errorf("AdmissionRejects = %d, want 1", got)
	}
}

func TestSessionCapWireMapping(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	sid := s.newSession(t, SessionConfig{MaxConcurrent: 1})
	sess, err := s.srv.Session(sid)
	if err != nil {
		t.Fatal(err)
	}
	slot, err := sess.acquire()
	if err != nil {
		t.Fatal(err)
	}
	resp, data := s.post(t, "/query", map[string]string{"session": sid, "sql": "select count(*) as n from t"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped query: %d %s, want 429", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "session_cap" {
		t.Errorf("class = %q, want session_cap", got)
	}
	slot()
	if resp, data := s.post(t, "/query", map[string]string{"session": sid, "sql": "select count(*) as n from t"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: %d %s", resp.StatusCode, data)
	}
	if got := s.srv.sm.SessionCapRejects.Load(); got != 1 {
		t.Errorf("SessionCapRejects = %d, want 1", got)
	}
}

func TestNotFoundMapping(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, []byte)
	}{
		{"unknown session", func() (*http.Response, []byte) {
			return s.post(t, "/query", map[string]string{"session": "s-999", "sql": "select 1"})
		}},
		{"unknown stmt", func() (*http.Response, []byte) {
			sid := s.newSession(t, SessionConfig{})
			return s.post(t, "/query", map[string]string{"session": sid, "stmt": "stmt-999"})
		}},
		{"unknown cursor", func() (*http.Response, []byte) {
			sid := s.newSession(t, SessionConfig{})
			return s.post(t, "/cursor/cur-999", map[string]string{"session": sid})
		}},
	} {
		resp, data := tc.do()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d %s, want 404", tc.name, resp.StatusCode, data)
		} else if got := errClassOf(t, data); got != "not_found" {
			t.Errorf("%s: class = %q, want not_found", tc.name, got)
		}
	}
}

func TestRowBudgetWireMapping(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 20), Config{})
	sid := s.newSession(t, SessionConfig{RowBudget: 2})
	resp, data := s.post(t, "/query", map[string]string{"session": sid, "sql": "select id from t"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("row-budget query: %d %s, want 422", resp.StatusCode, data)
	}
	if got := errClassOf(t, data); got != "row_budget" {
		t.Errorf("class = %q, want row_budget", got)
	}
}

func TestPoolReleasedOnQueryError(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{
		Admission: AdmissionConfig{MaxConcurrent: 4, PoolBytes: 1 << 20, DefaultReserve: 1 << 18},
	})
	resp, _ := s.post(t, "/query", map[string]string{"sql": "select bogus syntax from nowhere ..."})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("bogus query succeeded")
	}
	if got := s.srv.sm.InFlight.Load(); got != 0 {
		t.Errorf("InFlight after error = %d, want 0", got)
	}
	if got := s.srv.sm.PoolInUse.Load(); got != 0 {
		t.Errorf("PoolInUse after error = %d, want 0", got)
	}
}

func TestCursorFetchAndClose(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 50), Config{})
	sid := s.newSession(t, SessionConfig{})
	resp, data := s.post(t, "/query", map[string]any{"session": sid, "sql": "select id from t", "cursor": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open cursor: %d %s", resp.StatusCode, data)
	}
	var opened struct {
		Cursor  string   `json:"cursor"`
		Columns []string `json:"columns"`
	}
	json.Unmarshal(data, &opened)
	if opened.Cursor == "" || len(opened.Columns) != 1 {
		t.Fatalf("cursor response: %s", data)
	}
	if got := s.srv.sm.CursorsOpen.Load(); got != 1 {
		t.Errorf("CursorsOpen = %d, want 1", got)
	}
	// The cursor holds its admission reservation between fetches.
	if got := s.srv.sm.InFlight.Load(); got != 1 {
		t.Errorf("InFlight with open cursor = %d, want 1", got)
	}

	total := 0
	done := false
	for i := 0; i < 20 && !done; i++ {
		resp, data = s.post(t, "/cursor/"+opened.Cursor, map[string]any{"session": sid, "limit": 16})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch: %d %s", resp.StatusCode, data)
		}
		var out struct {
			Rows [][]any `json:"rows"`
			Done bool    `json:"done"`
		}
		json.Unmarshal(data, &out)
		total += len(out.Rows)
		done = out.Done
	}
	if !done || total != 50 {
		t.Fatalf("fetched %d rows, done=%v, want 50/true", total, done)
	}
	// Exhaustion closed the cursor and returned all resources.
	if got := s.srv.sm.CursorsOpen.Load(); got != 0 {
		t.Errorf("CursorsOpen after exhaustion = %d, want 0", got)
	}
	if got := s.srv.sm.InFlight.Load(); got != 0 {
		t.Errorf("InFlight after exhaustion = %d, want 0", got)
	}
	if got := s.srv.sm.PoolInUse.Load(); got != 0 {
		t.Errorf("PoolInUse after exhaustion = %d, want 0", got)
	}
}

func TestCursorReaper(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 50), Config{})
	sid := s.newSession(t, SessionConfig{})
	resp, data := s.post(t, "/query", map[string]any{"session": sid, "sql": "select id from t", "cursor": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open cursor: %d %s", resp.StatusCode, data)
	}
	if got := s.srv.sm.CursorsOpen.Load(); got != 1 {
		t.Fatalf("CursorsOpen = %d, want 1", got)
	}
	// Drive the reaper deterministically: pretend an hour passed.
	s.srv.reap(time.Now().Add(time.Hour))
	if got := s.srv.sm.CursorsOpen.Load(); got != 0 {
		t.Errorf("CursorsOpen after reap = %d, want 0", got)
	}
	if got := s.srv.sm.CursorsReaped.Load(); got != 1 {
		t.Errorf("CursorsReaped = %d, want 1", got)
	}
	if got := s.srv.sm.InFlight.Load(); got != 0 {
		t.Errorf("InFlight after reap = %d, want 0", got)
	}
	if got := s.srv.sm.PoolInUse.Load(); got != 0 {
		t.Errorf("PoolInUse after reap = %d, want 0", got)
	}
	// The reaper also closed the now-idle session on the same sweep or
	// will on the next; either way a fresh query session still works.
	sid2 := s.newSession(t, SessionConfig{})
	if _, rows, _ := s.queryRows(t, sid2, "select count(*) as n from t"); rows[0][0].(float64) != 50 {
		t.Errorf("post-reap query broken: %v", rows)
	}
}

func TestSessionCloseClosesCursors(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 50), Config{})
	sid := s.newSession(t, SessionConfig{})
	resp, data := s.post(t, "/query", map[string]any{"session": sid, "sql": "select id from t", "cursor": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open cursor: %d %s", resp.StatusCode, data)
	}
	if resp, data := s.delete(t, "/session/"+sid); resp.StatusCode != http.StatusOK {
		t.Fatalf("close session: %d %s", resp.StatusCode, data)
	}
	if got := s.srv.sm.CursorsOpen.Load(); got != 0 {
		t.Errorf("CursorsOpen after session close = %d, want 0", got)
	}
	if got := s.srv.sm.InFlight.Load(); got != 0 {
		t.Errorf("InFlight after session close = %d, want 0", got)
	}
	if got := s.srv.sm.PoolInUse.Load(); got != 0 {
		t.Errorf("PoolInUse after session close = %d, want 0", got)
	}
}

func TestExecLifecycleOverWire(t *testing.T) {
	s := newTestServer(t, orthoq.NewMemory(), Config{})
	resp, data := s.post(t, "/exec", map[string]any{
		"create_table": map[string]any{
			"name": "events",
			"columns": []map[string]any{
				{"name": "id", "type": "int"},
				{"name": "day", "type": "date"},
				{"name": "tag", "type": "string", "nullable": true},
			},
			"key": []int{0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create_table: %d %s", resp.StatusCode, data)
	}
	resp, data = s.post(t, "/exec", map[string]any{
		"insert": map[string]any{
			"table": "events",
			"rows": [][]any{
				{1, "2026-01-02", "a"},
				{2, "2026-01-03", nil},
			},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, data)
	}
	if resp, data = s.post(t, "/exec", map[string]any{"analyze": true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, data)
	}
	_, rows, _ := s.queryRows(t, "", "select id, day, tag from events where id = 2")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != "2026-01-03" || rows[0][2] != nil {
		t.Errorf("datum round-trip: %v", rows[0])
	}

	// Bad datum type → 400.
	resp, data = s.post(t, "/exec", map[string]any{
		"insert": map[string]any{"table": "events", "rows": [][]any{{"oops", "2026-01-01", "x"}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad datum: %d %s, want 400", resp.StatusCode, data)
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{})
	sid := s.newSession(t, SessionConfig{})
	s.queryRows(t, sid, "select count(*) as n from t")

	resp, data := s.get(t, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte("ok")) {
		t.Errorf("healthz: %d %s", resp.StatusCode, data)
	}
	resp, data = s.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var m struct {
		Queries uint64 `json:"queries"`
		Server  *struct {
			SessionsOpened  uint64 `json:"sessions_opened"`
			QueriesAdmitted uint64 `json:"queries_admitted"`
		} `json:"server"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Server == nil || m.Server.SessionsOpened < 1 || m.Server.QueriesAdmitted < 1 {
		t.Errorf("server metrics section: %s", data)
	}
	if m.Queries < 1 {
		t.Errorf("engine queries = %d, want >= 1", m.Queries)
	}

	resp, data = s.get(t, "/schema")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"name":"t"`)) {
		t.Errorf("schema: %d %s", resp.StatusCode, data)
	}
}

func TestQueryLogSessionLabels(t *testing.T) {
	var log bytes.Buffer
	db := newMemDB(t, 5)
	s := newTestServer(t, db, Config{QueryLog: &log})
	sid := s.newSession(t, SessionConfig{})
	s.queryRows(t, sid, "select count(*) as n from t")
	found := false
	for _, line := range strings.Split(strings.TrimSpace(log.String()), "\n") {
		var rec struct {
			Session string `json:"session"`
		}
		if json.Unmarshal([]byte(line), &rec) == nil && rec.Session == sid {
			found = true
		}
	}
	if !found {
		t.Errorf("no query-log record labeled session=%s in:\n%s", sid, log.String())
	}
}

func TestQueuedQueryRunsAfterRelease(t *testing.T) {
	// A query that arrives at saturation queues (not rejects) while the
	// queue has room, and completes once the slot frees.
	s := newTestServer(t, newMemDB(t, 5), Config{
		Admission: AdmissionConfig{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: 5 * time.Second},
	})
	rel, _, err := s.srv.adm.Admit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		data   []byte
	}
	resc := make(chan result, 1)
	go func() {
		resp, data := s.post(t, "/query", map[string]string{"sql": "select count(*) as n from t"})
		resc <- result{resp.StatusCode, data}
	}()
	waitFor(t, func() bool { return s.srv.sm.QueueDepth.Load() == 1 })
	rel()
	r := <-resc
	if r.status != http.StatusOK {
		t.Fatalf("queued query: %d %s", r.status, r.data)
	}
	// The trailer reports the admission wait.
	if !bytes.Contains(r.data, []byte("queued_us")) {
		t.Errorf("trailer lacks queued_us: %s", r.data)
	}
	if got := s.srv.sm.QueriesQueued.Load(); got != 1 {
		t.Errorf("QueriesQueued = %d, want 1", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	db := newMemDB(t, 5)
	srv := New(db, Config{})
	sid, err := srv.CreateSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_ = sid
	srv.Close()
	srv.Close()
	if _, err := srv.CreateSession(SessionConfig{}); err == nil {
		t.Error("CreateSession after Close succeeded")
	}
	if got := srv.sm.SessionsActive.Load(); got != 0 {
		t.Errorf("SessionsActive after Close = %d, want 0", got)
	}
}

func TestSessionConfigDefaultsMerge(t *testing.T) {
	s := newTestServer(t, newMemDB(t, 5), Config{
		Session: SessionConfig{TimeoutMS: 5000, MaxConcurrent: 3},
	})
	resp, data := s.post(t, "/session", SessionConfig{MemBudget: 1 << 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, data)
	}
	var out sessionResponse
	json.Unmarshal(data, &out)
	if out.Config.TimeoutMS != 5000 || out.Config.MaxConcurrent != 3 || out.Config.MemBudget != 1<<20 {
		t.Errorf("merged config = %+v", out.Config)
	}
}
