package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"orthoq"
)

// Typed session-layer errors. The HTTP layer maps them onto status
// codes (see classify in http.go).
var (
	// ErrSessionCap is returned when a session already runs its
	// configured maximum of concurrent queries (HTTP 429).
	ErrSessionCap = errors.New("server: session concurrency cap reached")
	// ErrNotFound is returned for unknown session, statement, and
	// cursor handles (HTTP 404).
	ErrNotFound = errors.New("server: not found")
	// ErrTxnWrite is returned when a write arrives inside an open
	// transaction — transactions are read-only snapshots (HTTP 409).
	ErrTxnWrite = errors.New("server: writes are not allowed inside a transaction")
	// ErrServerClosed is returned for requests arriving after Close.
	ErrServerClosed = errors.New("server: closed")
	// ErrNotReady is returned while the server cannot serve queries:
	// the database is still opening (recovery replaying the write-ahead
	// log) or failed to open (HTTP 503). Load balancers watch /readyz,
	// which reports the same condition.
	ErrNotReady = errors.New("server: not ready")
)

// SessionConfig carries the per-session execution defaults a client
// sets at session creation. The zero value of each field defers to the
// server-wide default; fields mirror the engine's Config governance
// knobs (see orthoq.Config).
type SessionConfig struct {
	// TimeoutMS bounds each query of the session, in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MemBudget caps operator working memory per query, in bytes. It is
	// also the session's admission-pool reservation.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// RowBudget aborts queries after this many operator-row productions.
	RowBudget int64 `json:"row_budget,omitempty"`
	// Parallelism is the morsel-driven worker count per query.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxConcurrent caps the session's simultaneously running queries
	// (0 = server default; applied before global admission).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// ResultCache overrides the server's result-cache default for this
	// session: nil defers to the server (enabled unless
	// Config.DisableResultCache), false opts this session out, true is
	// explicit opt-in (still subject to the server-wide disable).
	ResultCache *bool `json:"result_cache,omitempty"`
}

// merge overlays the session's explicit settings on the server-wide
// defaults.
func (c SessionConfig) merge(def SessionConfig) SessionConfig {
	if c.TimeoutMS == 0 {
		c.TimeoutMS = def.TimeoutMS
	}
	if c.MemBudget == 0 {
		c.MemBudget = def.MemBudget
	}
	if c.RowBudget == 0 {
		c.RowBudget = def.RowBudget
	}
	if c.Parallelism == 0 {
		c.Parallelism = def.Parallelism
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = def.MaxConcurrent
	}
	if c.ResultCache == nil {
		c.ResultCache = def.ResultCache
	}
	return c
}

// Session is one client's server-side state: execution defaults,
// prepared statements, open streaming cursors, and (between BEGIN and
// COMMIT/ROLLBACK) the pinned read snapshot of its transaction. All
// methods are safe for concurrent use — one client may multiplex
// requests over many connections.
type Session struct {
	id  string
	srv *Server
	cfg SessionConfig

	mu       sync.Mutex
	stmts    map[string]*orthoq.Stmt
	cursors  map[string]*cursor
	snap     *orthoq.Snapshot // non-nil while a transaction is open
	inflight int
	nextID   uint64
	closed   bool
	lastUse  time.Time
}

// ID returns the session handle.
func (s *Session) ID() string { return s.id }

// touch refreshes the idle clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.lastUse = time.Now()
	s.mu.Unlock()
}

// config builds the engine Config for one run of this session: the
// full technique set, the session's governance knobs, and the
// session label for the query log.
func (s *Session) config() orthoq.Config {
	cfg := orthoq.DefaultConfig()
	cfg.Timeout = time.Duration(s.cfg.TimeoutMS) * time.Millisecond
	cfg.MemBudget = s.cfg.MemBudget
	cfg.RowBudget = s.cfg.RowBudget
	cfg.Parallelism = s.cfg.Parallelism
	cfg.Session = s.id
	cfg.QueryLog = s.srv.cfg.QueryLog
	if !s.srv.cfg.DisableResultCache && (s.cfg.ResultCache == nil || *s.cfg.ResultCache) {
		cfg.ResultCache.Enabled = true
		cfg.ResultCache.MaxBytes = s.srv.rcBytes
	}
	return cfg
}

// reserve is the session's admission-pool reservation per query: its
// MemBudget when set, else the server's default reserve.
func (s *Session) reserve() int64 {
	if s.cfg.MemBudget > 0 {
		return s.cfg.MemBudget
	}
	return s.srv.adm.cfg.DefaultReserve
}

// acquire claims one of the session's concurrency slots; the returned
// func releases it. A session keeps a slot for the whole life of a
// query — including a cursor's, until the cursor closes.
func (s *Session) acquire() (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: session %s", ErrNotFound, s.id)
	}
	if s.cfg.MaxConcurrent > 0 && s.inflight >= s.cfg.MaxConcurrent {
		s.srv.sm.SessionCapRejects.Add(1)
		return nil, fmt.Errorf("%w (%d running)", ErrSessionCap, s.inflight)
	}
	s.inflight++
	s.lastUse = time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inflight--
			s.lastUse = time.Now()
			s.mu.Unlock()
		})
	}, nil
}

// snapshot returns the transaction snapshot when one is open, else nil
// (nil means "read live data").
func (s *Session) snapshot() *orthoq.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// inTxn reports whether a transaction is open.
func (s *Session) inTxn() bool { return s.snapshot() != nil }

// Begin opens a lightweight read-only transaction: it pins a snapshot
// of every table, and every query of the session reads from it until
// Commit/Rollback. Nested Begin is an error.
func (s *Session) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: session %s", ErrNotFound, s.id)
	}
	if s.snap != nil {
		return errors.New("server: transaction already open")
	}
	s.snap = s.srv.db.Snapshot()
	s.lastUse = time.Now()
	return nil
}

// Commit closes the open transaction (there are no writes to publish —
// transactions are read-only; Commit and Rollback differ only in name).
func (s *Session) Commit() error { return s.endTxn("commit") }

// Rollback closes the open transaction.
func (s *Session) Rollback() error { return s.endTxn("rollback") }

func (s *Session) endTxn(what string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil {
		return fmt.Errorf("server: %s without open transaction", what)
	}
	s.snap = nil
	s.lastUse = time.Now()
	return nil
}

// Prepare compiles SQL under the session's defaults and stores it
// under a fresh statement handle.
func (s *Session) Prepare(sql string) (string, error) {
	stmt, err := s.srv.db.Prepare(sql, s.config())
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("%w: session %s", ErrNotFound, s.id)
	}
	s.nextID++
	id := fmt.Sprintf("stmt-%d", s.nextID)
	if s.stmts == nil {
		s.stmts = make(map[string]*orthoq.Stmt)
	}
	s.stmts[id] = stmt
	s.lastUse = time.Now()
	return id, nil
}

// stmt looks up a prepared statement by handle.
func (s *Session) stmt(id string) (*orthoq.Stmt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[id]
	if !ok {
		return nil, fmt.Errorf("%w: statement %s", ErrNotFound, id)
	}
	return st, nil
}

// cursor is a server-side streaming query: the engine Stream plus the
// session slot and admission reservation it holds until closed. Its
// context is detached from the creating HTTP request so the stream
// survives between fetches; the idle reaper closes cursors whose
// client stopped fetching.
type cursor struct {
	id   string
	sess *Session

	mu      sync.Mutex
	stream  *orthoq.Stream
	cancel  context.CancelFunc
	slot    func() // session concurrency slot
	release func() // admission reservation
	cols    []string
	lastUse time.Time
	closed  bool
}

// addCursor registers a freshly opened stream as a cursor.
func (s *Session) addCursor(st *orthoq.Stream, cancel context.CancelFunc, slot, release func()) (*cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: session %s", ErrNotFound, s.id)
	}
	s.nextID++
	cu := &cursor{
		id:      fmt.Sprintf("cur-%d", s.nextID),
		sess:    s,
		stream:  st,
		cancel:  cancel,
		slot:    slot,
		release: release,
		cols:    st.Columns(),
		lastUse: time.Now(),
	}
	if s.cursors == nil {
		s.cursors = make(map[string]*cursor)
	}
	s.cursors[cu.id] = cu
	s.srv.sm.CursorsOpen.Add(1)
	s.lastUse = time.Now()
	return cu, nil
}

// cursor looks up an open cursor by handle.
func (s *Session) cursor(id string) (*cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cu, ok := s.cursors[id]
	if !ok {
		return nil, fmt.Errorf("%w: cursor %s", ErrNotFound, id)
	}
	return cu, nil
}

// fetch pulls up to limit rows (limit <= 0 means a default batch).
// done=true means the stream is exhausted (or failed) and the cursor
// has been closed.
func (cu *cursor) fetch(limit int) (rows []orthoq.Row, done bool, err error) {
	cu.mu.Lock()
	if cu.closed {
		cu.mu.Unlock()
		return nil, true, fmt.Errorf("%w: cursor %s", ErrNotFound, cu.id)
	}
	if limit <= 0 {
		limit = 1024
	}
	cu.lastUse = time.Now()
	for len(rows) < limit {
		row, ok, nerr := cu.stream.Next()
		if nerr != nil {
			err = nerr
			break
		}
		if !ok {
			done = true
			break
		}
		rows = append(rows, row)
	}
	cu.lastUse = time.Now()
	cu.mu.Unlock()
	if done || err != nil {
		cu.close(false)
		done = true
	}
	return rows, done, err
}

// close tears the cursor down: engine stream, detached context,
// session slot, admission reservation, and registry entry. Idempotent.
func (cu *cursor) close(reaped bool) {
	cu.mu.Lock()
	if cu.closed {
		cu.mu.Unlock()
		return
	}
	cu.closed = true
	cu.mu.Unlock()

	_ = cu.stream.Close()
	if cu.cancel != nil {
		cu.cancel()
	}
	if cu.slot != nil {
		cu.slot()
	}
	if cu.release != nil {
		cu.release()
	}
	s := cu.sess
	s.mu.Lock()
	delete(s.cursors, cu.id)
	s.mu.Unlock()
	s.srv.sm.CursorsOpen.Add(-1)
	if reaped {
		s.srv.sm.CursorsReaped.Add(1)
	}
}

// close shuts the session down: all cursors closed (releasing their
// slots and reservations), statements dropped, any transaction
// snapshot released. Idempotent.
func (s *Session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cursors := make([]*cursor, 0, len(s.cursors))
	for _, cu := range s.cursors {
		cursors = append(cursors, cu)
	}
	s.stmts = nil
	s.snap = nil
	s.mu.Unlock()
	for _, cu := range cursors {
		cu.close(false)
	}
}
