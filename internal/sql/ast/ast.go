// Package ast defines the abstract syntax tree produced by the SQL
// parser and consumed by the algebrizer.
package ast

// Query is a table-valued statement: a select block or a UNION ALL of
// blocks.
type Query interface {
	queryNode()
}

// SelectStmt is one SELECT block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // comma-separated items; cross-product semantics
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

// UnionStmt is Left UNION ALL Right. (Only UNION ALL is supported; the
// engine is bag-oriented and DISTINCT is normalized as GroupBy.)
type UnionStmt struct {
	Left, Right Query
}

// ExceptStmt is Left EXCEPT ALL Right (bag difference; the engine's
// Difference operator, needed for the paper's identity (6)).
type ExceptStmt struct {
	Left, Right Query
}

// CTE is one WITH-clause entry.
type CTE struct {
	Name       string
	ColAliases []string
	Query      Query
}

// WithStmt is "WITH ctes... body". CTEs are inlined at each reference
// (no recursion).
type WithStmt struct {
	CTEs []CTE
	Body Query
}

func (*SelectStmt) queryNode() {}
func (*UnionStmt) queryNode()  {}
func (*ExceptStmt) queryNode() {}
func (*WithStmt) queryNode()   {}

// SelectItem is one output expression; Star is "*" or "t.*" when
// Table is set.
type SelectItem struct {
	Star  bool
	Table string // qualifier for t.*
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is a FROM-clause item.
type TableExpr interface {
	tableNode()
}

// TableName references a base table, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// DerivedTable is a parenthesized subquery in FROM.
type DerivedTable struct {
	Query Query
	Alias string
	// ColAliases optionally renames the derived table's columns.
	ColAliases []string
}

// JoinKind mirrors SQL join syntax.
type JoinKind uint8

// Join kinds in FROM syntax.
const (
	JoinInner JoinKind = iota
	JoinCross
	JoinLeftOuter
)

// JoinExpr is an explicit JOIN.
type JoinExpr struct {
	Kind        JoinKind
	Left, Right TableExpr
	On          Expr
}

func (*TableName) tableNode()    {}
func (*DerivedTable) tableNode() {}
func (*JoinExpr) tableNode()     {}

// Expr is a scalar expression.
type Expr interface {
	exprNode()
}

// Ident is a possibly-qualified column reference (col or table.col).
type Ident struct {
	Table string
	Name  string
}

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	IsInt bool
	Int   int64
	Float float64
	Text  string
}

// StringLit is a character literal.
type StringLit struct {
	Val string
}

// DateLit is a DATE 'YYYY-MM-DD' literal.
type DateLit struct {
	Val string
}

// IntervalLit is "INTERVAL 'n' day|month|year"; only valid combined
// with a date via + or -.
type IntervalLit struct {
	N    int64
	Unit string
}

// Param is a parameter slot standing in for a literal that forced
// parameterization (plan caching) extracted from the query text. It is
// never produced by the parser; internal/plancache rewrites literal
// nodes into Params before algebrization.
type Param struct {
	Idx int
}

// NullLit is NULL.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Val bool
}

// BinaryExpr covers comparisons, arithmetic, AND and OR. Op is the SQL
// token: "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%",
// "and", "or".
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr covers NOT and unary minus.
type UnaryExpr struct {
	Op  string // "not" or "-"
	Arg Expr
}

// IsNullExpr is "arg IS [NOT] NULL".
type IsNullExpr struct {
	Arg Expr
	Not bool
}

// BetweenExpr is "arg [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	Arg, Lo, Hi Expr
	Not         bool
}

// LikeExpr is "l [NOT] LIKE r".
type LikeExpr struct {
	L, R Expr
	Not  bool
}

// InExpr is "arg [NOT] IN (list)" or "arg [NOT] IN (subquery)".
type InExpr struct {
	Arg   Expr
	List  []Expr // non-nil for the list form
	Query Query  // non-nil for the subquery form
	Not   bool
}

// FuncCall is a function or aggregate application. Star marks
// count(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// WhenClause is one CASE arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// SubqueryExpr is a scalar subquery in expression position.
type SubqueryExpr struct {
	Query Query
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Query Query
	Not   bool
}

// QuantExpr is "l op ANY/ALL (subquery)".
type QuantExpr struct {
	Op    string // comparison op token
	All   bool
	L     Expr
	Query Query
}

func (*Ident) exprNode()        {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*DateLit) exprNode()      {}
func (*IntervalLit) exprNode()  {}
func (*Param) exprNode()        {}
func (*NullLit) exprNode()      {}
func (*BoolLit) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*IsNullExpr) exprNode()   {}
func (*BetweenExpr) exprNode()  {}
func (*LikeExpr) exprNode()     {}
func (*InExpr) exprNode()       {}
func (*FuncCall) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*ExistsExpr) exprNode()   {}
func (*QuantExpr) exprNode()    {}
