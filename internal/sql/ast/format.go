package ast

import (
	"fmt"
	"strings"
)

// Format renders a query back to SQL. The output parses to an
// equivalent AST (Format is a right inverse of the parser up to
// whitespace), which the parser's round-trip property tests rely on.
func Format(q Query) string {
	var b strings.Builder
	formatQuery(&b, q)
	return b.String()
}

func formatQuery(b *strings.Builder, q Query) {
	switch t := q.(type) {
	case *SelectStmt:
		formatSelect(b, t)
	case *UnionStmt:
		formatQuery(b, t.Left)
		b.WriteString(" union all ")
		formatQuery(b, t.Right)
	case *ExceptStmt:
		formatQuery(b, t.Left)
		b.WriteString(" except all ")
		formatQuery(b, t.Right)
	case *WithStmt:
		b.WriteString("with ")
		for i, cte := range t.CTEs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(cte.Name)
			if len(cte.ColAliases) > 0 {
				b.WriteString(" (")
				b.WriteString(strings.Join(cte.ColAliases, ", "))
				b.WriteString(")")
			}
			b.WriteString(" as (")
			formatQuery(b, cte.Query)
			b.WriteString(")")
		}
		b.WriteString(" ")
		formatQuery(b, t.Body)
	default:
		fmt.Fprintf(b, "/* unknown query %T */", q)
	}
}

func formatSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			if it.Table != "" {
				b.WriteString(it.Table)
				b.WriteString(".")
			}
			b.WriteString("*")
			continue
		}
		b.WriteString(FormatExpr(it.Expr))
		if it.Alias != "" {
			b.WriteString(" as ")
			b.WriteString(it.Alias)
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" from ")
		for i, te := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			formatTableExpr(b, te)
		}
	}
	if s.Where != nil {
		b.WriteString(" where ")
		b.WriteString(FormatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(e))
		}
	}
	if s.Having != nil {
		b.WriteString(" having ")
		b.WriteString(FormatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" order by ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(o.Expr))
			if o.Desc {
				b.WriteString(" desc")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(b, " limit %d", *s.Limit)
	}
}

func formatTableExpr(b *strings.Builder, te TableExpr) {
	switch t := te.(type) {
	case *TableName:
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" as ")
			b.WriteString(t.Alias)
		}
	case *DerivedTable:
		b.WriteString("(")
		formatQuery(b, t.Query)
		b.WriteString(") as ")
		b.WriteString(t.Alias)
		if len(t.ColAliases) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(t.ColAliases, ", "))
			b.WriteString(")")
		}
	case *JoinExpr:
		// Parenthesize the chain so reparsing preserves associativity.
		b.WriteString("(")
		formatTableExpr(b, t.Left)
		switch t.Kind {
		case JoinInner:
			b.WriteString(" join ")
		case JoinLeftOuter:
			b.WriteString(" left outer join ")
		case JoinCross:
			b.WriteString(" cross join ")
		}
		formatTableExpr(b, t.Right)
		if t.On != nil {
			b.WriteString(" on ")
			b.WriteString(FormatExpr(t.On))
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* unknown table expr %T */", te)
	}
}

// FormatExpr renders one scalar expression. All compound forms are
// parenthesized, so operator precedence never needs reconstructing.
func FormatExpr(e Expr) string {
	switch t := e.(type) {
	case nil:
		return "null"
	case *Ident:
		if t.Table != "" {
			return t.Table + "." + t.Name
		}
		return t.Name
	case *NumberLit:
		return t.Text
	case *StringLit:
		return "'" + strings.ReplaceAll(t.Val, "'", "''") + "'"
	case *DateLit:
		return "date '" + t.Val + "'"
	case *IntervalLit:
		return fmt.Sprintf("interval '%d' %s", t.N, t.Unit)
	case *Param:
		return fmt.Sprintf("$%d", t.Idx+1)
	case *NullLit:
		return "null"
	case *BoolLit:
		if t.Val {
			return "true"
		}
		return "false"
	case *BinaryExpr:
		return "(" + FormatExpr(t.L) + " " + t.Op + " " + FormatExpr(t.R) + ")"
	case *UnaryExpr:
		if t.Op == "not" {
			return "(not " + FormatExpr(t.Arg) + ")"
		}
		return "(- " + FormatExpr(t.Arg) + ")"
	case *IsNullExpr:
		if t.Not {
			return "(" + FormatExpr(t.Arg) + " is not null)"
		}
		return "(" + FormatExpr(t.Arg) + " is null)"
	case *BetweenExpr:
		not := ""
		if t.Not {
			not = "not "
		}
		return "(" + FormatExpr(t.Arg) + " " + not + "between " +
			FormatExpr(t.Lo) + " and " + FormatExpr(t.Hi) + ")"
	case *LikeExpr:
		not := ""
		if t.Not {
			not = "not "
		}
		return "(" + FormatExpr(t.L) + " " + not + "like " + FormatExpr(t.R) + ")"
	case *InExpr:
		not := ""
		if t.Not {
			not = "not "
		}
		if t.Query != nil {
			return "(" + FormatExpr(t.Arg) + " " + not + "in (" + Format(t.Query) + "))"
		}
		parts := make([]string, len(t.List))
		for i, le := range t.List {
			parts[i] = FormatExpr(le)
		}
		return "(" + FormatExpr(t.Arg) + " " + not + "in (" + strings.Join(parts, ", ") + "))"
	case *FuncCall:
		if t.Star {
			return t.Name + "(*)"
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = FormatExpr(a)
		}
		d := ""
		if t.Distinct {
			d = "distinct "
		}
		return t.Name + "(" + d + strings.Join(parts, ", ") + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("case")
		for _, w := range t.Whens {
			b.WriteString(" when ")
			b.WriteString(FormatExpr(w.Cond))
			b.WriteString(" then ")
			b.WriteString(FormatExpr(w.Then))
		}
		if t.Else != nil {
			b.WriteString(" else ")
			b.WriteString(FormatExpr(t.Else))
		}
		b.WriteString(" end")
		return b.String()
	case *SubqueryExpr:
		return "(" + Format(t.Query) + ")"
	case *ExistsExpr:
		not := ""
		if t.Not {
			not = "not "
		}
		return "(" + not + "exists (" + Format(t.Query) + "))"
	case *QuantExpr:
		q := "any"
		if t.All {
			q = "all"
		}
		return "(" + FormatExpr(t.L) + " " + t.Op + " " + q + " (" + Format(t.Query) + "))"
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}
