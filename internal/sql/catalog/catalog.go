// Package catalog holds schema metadata: tables, columns, keys, and
// secondary indexes. The catalog is the optimizer's and algebrizer's
// view of the database; actual row storage lives in internal/storage.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"orthoq/internal/sql/types"
)

// Column describes one table column.
type Column struct {
	Name     string
	Type     types.Kind
	Nullable bool
}

// Index describes a secondary index over a prefix of columns (by
// ordinal within the table).
type Index struct {
	Name    string
	Cols    []int // column ordinals, significant order
	Unique  bool
	Ordered bool // supports range scans (sorted), not just point lookups
}

// Table is the schema of one table.
type Table struct {
	Name    string
	Columns []Column
	// Key lists the ordinals of the primary key columns. Every table in
	// this engine has a primary key (the paper's identities (7)-(9)
	// require keys; see DESIGN.md).
	Key     []int
	Indexes []Index
}

// ColumnOrdinal returns the ordinal of the named column, or -1.
func (t *Table) ColumnOrdinal(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// IndexOn returns an index whose leading columns match cols exactly as a
// prefix (in any order for the equality set), or nil. It is used by the
// optimizer when considering index-lookup joins.
func (t *Table) IndexOn(cols []int) *Index {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for i := range t.Indexes {
		idx := &t.Indexes[i]
		if len(idx.Cols) < len(want) {
			continue
		}
		prefix := append([]int(nil), idx.Cols[:len(want)]...)
		sort.Ints(prefix)
		eq := true
		for j := range want {
			if prefix[j] != want[j] {
				eq = false
				break
			}
		}
		if eq {
			return idx
		}
	}
	return nil
}

// Catalog is a named collection of tables. Lookup and registration
// are safe for concurrent use (server-mode DDL runs alongside query
// compilation); the registered *Table schemas themselves are
// immutable by convention once added.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table. It returns an error on duplicate names or
// invalid schemas (empty column list, bad key/index ordinals).
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := strings.ToLower(t.Name)
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	if len(t.Key) == 0 {
		return fmt.Errorf("catalog: table %q has no primary key", t.Name)
	}
	check := func(ords []int, what string) error {
		for _, o := range ords {
			if o < 0 || o >= len(t.Columns) {
				return fmt.Errorf("catalog: table %q: %s ordinal %d out of range", t.Name, what, o)
			}
		}
		return nil
	}
	if err := check(t.Key, "key"); err != nil {
		return err
	}
	for _, idx := range t.Indexes {
		if err := check(idx.Cols, "index "+idx.Name); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, col := range t.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %q: duplicate column %q", t.Name, col.Name)
		}
		seen[lc] = true
	}
	c.tables[name] = t
	c.order = append(c.order, name)
	return nil
}

// Remove unregisters a table by case-insensitive name; removing an
// absent table is a no-op. Storage uses it to roll back a registration
// whose write-ahead-log append failed, so the catalog never advertises
// a table that was neither published nor logged.
func (c *Catalog) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return
	}
	delete(c.tables, key)
	for i, n := range c.order {
		if n == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Table looks up a table by case-insensitive name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}
