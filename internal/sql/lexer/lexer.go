// Package lexer tokenizes the SQL subset accepted by the engine.
package lexer

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	EOF TokKind = iota
	Ident
	Keyword
	Number
	String
	Symbol
)

// Token is one lexical token. For Keyword tokens Text is lower-cased;
// Ident preserves the original spelling.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// keywords recognized by the parser. Anything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "as": true, "on": true,
	"join": true, "inner": true, "left": true, "right": true, "outer": true,
	"cross": true, "and": true, "or": true, "not": true, "in": true,
	"exists": true, "between": true, "like": true, "is": true, "null": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"union": true, "all": true, "except": true, "with": true, "any": true, "some": true, "distinct": true,
	"asc": true, "desc": true, "date": true, "interval": true, "true": true, "false": true,
	"semi": true, "anti": true,
}

// Lexer scans an input string into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		lower := strings.ToLower(word)
		if keywords[lower] {
			return Token{Kind: Keyword, Text: lower, Pos: start}, nil
		}
		return Token{Kind: Ident, Text: word, Pos: start}, nil
	case isDigit(c):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if !isDigit(ch) {
				break
			}
			l.pos++
		}
		return Token{Kind: Number, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: String, Text: b.String(), Pos: start}, nil
	default:
		// multi-char symbols first
		for _, sym := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], sym) {
				l.pos += len(sym)
				if sym == "!=" {
					sym = "<>"
				}
				return Token{Kind: Symbol, Text: sym, Pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '+', '-', '*', '/', '%', '<', '>', '=', ';':
			l.pos++
			return Token{Kind: Symbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

// Tokenize scans the whole input.
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
