package lexer

import (
	"testing"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := kinds(t, "select a1, 'it''s' from t where x <= 10.5 and y <> z;")
	var texts []string
	for _, tok := range toks {
		if tok.Kind == EOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"select", "a1", ",", "it's", "from", "t", "where",
		"x", "<=", "10.5", "and", "y", "<>", "z", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q, want %q", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestKeywordVsIdent(t *testing.T) {
	toks := kinds(t, "SELECT Foo FROM bar")
	if toks[0].Kind != Keyword || toks[0].Text != "select" {
		t.Errorf("SELECT: %+v", toks[0])
	}
	if toks[1].Kind != Ident || toks[1].Text != "Foo" {
		t.Errorf("identifiers must keep their spelling: %+v", toks[1])
	}
	if toks[2].Kind != Keyword {
		t.Errorf("FROM: %+v", toks[2])
	}
}

func TestNumbersAndDots(t *testing.T) {
	toks := kinds(t, "1 2.5 t.c 0.2")
	if toks[0].Kind != Number || toks[0].Text != "1" {
		t.Errorf("int: %+v", toks[0])
	}
	if toks[1].Kind != Number || toks[1].Text != "2.5" {
		t.Errorf("decimal: %+v", toks[1])
	}
	// t.c splits into ident dot ident.
	if toks[2].Text != "t" || toks[3].Text != "." || toks[4].Text != "c" {
		t.Errorf("qualified: %v %v %v", toks[2], toks[3], toks[4])
	}
	if toks[5].Text != "0.2" {
		t.Errorf("leading zero decimal: %+v", toks[5])
	}
}

func TestNotEqualsAlias(t *testing.T) {
	toks := kinds(t, "a != b")
	if toks[1].Kind != Symbol || toks[1].Text != "<>" {
		t.Errorf("!= must normalize to <>: %+v", toks[1])
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "select -- a comment\n x -- trailing")
	if len(toks) != 3 { // select, x, EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Text != "x" {
		t.Errorf("after comment: %+v", toks[1])
	}
}

func TestErrors(t *testing.T) {
	if _, err := Tokenize("select 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Tokenize("select #"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "ab cd")
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions: %d %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestEOFTerminates(t *testing.T) {
	toks := kinds(t, "")
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Errorf("empty input: %v", toks)
	}
}
