// Package parser turns SQL text into the AST of internal/sql/ast. It is
// a hand-written recursive-descent parser for the SQL subset described
// in DESIGN.md (S4).
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"orthoq/internal/sql/ast"
	"orthoq/internal/sql/lexer"
)

// Parse parses a single query (optionally ;-terminated).
func Parse(src string) (ast.Query, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == lexer.Symbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != lexer.EOF {
		return nil, p.errf("unexpected %q after end of query", p.peek().Text)
	}
	return q, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
	src  string
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }
func (p *parser) peek2() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	line, col := 1, 1
	for i := 0; i < t.Pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("parse error at line %d col %d: %s", line, col, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == lexer.Keyword && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().Text)
	}
	return nil
}

func (p *parser) isSymbol(s string) bool {
	t := p.peek()
	return t.Kind == lexer.Symbol && t.Text == s
}

func (p *parser) acceptSymbol(s string) bool {
	if p.isSymbol(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %q", s, p.peek().Text)
	}
	return nil
}

// parseQuery handles WITH prefixes and UNION/EXCEPT ALL chains
// (left-associative).
func (p *parser) parseQuery() (ast.Query, error) {
	if p.isKeyword("with") {
		return p.parseWith()
	}
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	var q ast.Query = left
	for p.isKeyword("union") || p.isKeyword("except") {
		op := p.next().Text
		if err := p.expectKeyword("all"); err != nil {
			return nil, fmt.Errorf("%w (only the ALL set operations are supported)", err)
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if op == "union" {
			q = &ast.UnionStmt{Left: q, Right: right}
		} else {
			q = &ast.ExceptStmt{Left: q, Right: right}
		}
	}
	return q, nil
}

// parseWith parses "WITH name [(cols)] AS (query), ... body".
func (p *parser) parseWith() (ast.Query, error) {
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	w := &ast.WithStmt{}
	for {
		t := p.peek()
		if t.Kind != lexer.Ident {
			return nil, p.errf("expected CTE name, found %q", t.Text)
		}
		p.next()
		cte := ast.CTE{Name: t.Text}
		if p.acceptSymbol("(") {
			for {
				c := p.peek()
				if c.Kind != lexer.Ident {
					return nil, p.errf("expected column alias in CTE %s", cte.Name)
				}
				p.next()
				cte.ColAliases = append(cte.ColAliases, c.Text)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		cte.Query = q
		w.CTEs = append(w.CTEs, cte)
		if !p.acceptSymbol(",") {
			break
		}
	}
	body, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	w.Body = body
	return w, nil
}

func (p *parser) parseSelect() (*ast.SelectStmt, error) {
	if p.acceptSymbol("(") {
		// Parenthesized select block: allow "(select ...)" as a branch.
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &ast.SelectStmt{}
	if p.acceptKeyword("distinct") {
		s.Distinct = true
	} else {
		p.acceptKeyword("all")
	}
	// select list
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("from") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, te)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.isKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.isKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.Kind != lexer.Number {
			return nil, p.errf("expected number after LIMIT")
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		s.Limit = &n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	// "*" or "ident.*"
	if p.isSymbol("*") {
		p.next()
		return ast.SelectItem{Star: true}, nil
	}
	if p.peek().Kind == lexer.Ident && p.peek2().Kind == lexer.Symbol && p.peek2().Text == "." {
		// lookahead for t.*
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == lexer.Symbol && p.toks[p.pos+2].Text == "*" {
			tbl := p.next().Text
			p.next() // .
			p.next() // *
			return ast.SelectItem{Star: true, Table: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		t := p.peek()
		if t.Kind != lexer.Ident {
			return item, p.errf("expected alias after AS")
		}
		p.next()
		item.Alias = t.Text
	} else if p.peek().Kind == lexer.Ident {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableExpr parses one FROM item including JOIN chains.
func (p *parser) parseTableExpr() (ast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind ast.JoinKind
		switch {
		case p.isKeyword("join"):
			p.next()
			kind = ast.JoinInner
		case p.isKeyword("inner"):
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = ast.JoinInner
		case p.isKeyword("left"):
			p.next()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = ast.JoinLeftOuter
		case p.isKeyword("cross"):
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = ast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &ast.JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != ast.JoinCross {
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (ast.TableExpr, error) {
	if p.acceptSymbol("(") {
		// derived table or parenthesized join
		if p.isKeyword("select") {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			dt := &ast.DerivedTable{Query: q}
			p.acceptKeyword("as")
			if p.peek().Kind != lexer.Ident {
				return nil, p.errf("derived table requires an alias")
			}
			dt.Alias = p.next().Text
			if p.acceptSymbol("(") {
				for {
					if p.peek().Kind != lexer.Ident {
						return nil, p.errf("expected column alias")
					}
					dt.ColAliases = append(dt.ColAliases, p.next().Text)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return dt, nil
		}
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	t := p.peek()
	if t.Kind != lexer.Ident {
		return nil, p.errf("expected table name, found %q", t.Text)
	}
	p.next()
	tn := &ast.TableName{Name: t.Text}
	if p.acceptKeyword("as") {
		if p.peek().Kind != lexer.Ident {
			return nil, p.errf("expected alias after AS")
		}
		tn.Alias = p.next().Text
	} else if p.peek().Kind == lexer.Ident {
		tn.Alias = p.next().Text
	}
	return tn, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr [cmpOp (addExpr | ANY/ALL subquery)
//	             | [NOT] BETWEEN | [NOT] IN | [NOT] LIKE | IS [NOT] NULL]
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/'|'%') unary)*
//	unary   := '-' unary | primary
func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.acceptKeyword("not") {
		a, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "not", Arg: a}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePredicate() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// comparison with optional quantifier
	if t := p.peek(); t.Kind == lexer.Symbol && cmpOps[t.Text] {
		op := p.next().Text
		if p.isKeyword("any") || p.isKeyword("some") || p.isKeyword("all") {
			all := p.next().Text == "all"
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.QuantExpr{Op: op, All: all, L: l, Query: q}, nil
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BinaryExpr{Op: op, L: l, R: r}, nil
	}
	neg := false
	if p.isKeyword("not") &&
		(p.peek2().Kind == lexer.Keyword &&
			(p.peek2().Text == "between" || p.peek2().Text == "in" || p.peek2().Text == "like")) {
		p.next()
		neg = true
	}
	switch {
	case p.acceptKeyword("between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BetweenExpr{Arg: l, Lo: lo, Hi: hi, Not: neg}, nil
	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.isKeyword("select") {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.InExpr{Arg: l, Query: q, Not: neg}, nil
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ast.InExpr{Arg: l, List: list, Not: neg}, nil
	case p.acceptKeyword("like"):
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.LikeExpr{L: l, R: r, Not: neg}, nil
	case p.isKeyword("is"):
		p.next()
		not := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{Arg: l, Not: not}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("+") || p.isSymbol("-") {
		op := p.next().Text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("*") || p.isSymbol("/") || p.isSymbol("%") {
		op := p.next().Text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.isSymbol("-") {
		p.next()
		a, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "-", Arg: a}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Number:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &ast.NumberLit{Float: f, Text: t.Text}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &ast.NumberLit{IsInt: true, Int: i, Text: t.Text}, nil
	case lexer.String:
		p.next()
		return &ast.StringLit{Val: t.Text}, nil
	case lexer.Keyword:
		switch t.Text {
		case "null":
			p.next()
			return &ast.NullLit{}, nil
		case "true", "false":
			p.next()
			return &ast.BoolLit{Val: t.Text == "true"}, nil
		case "date":
			p.next()
			s := p.peek()
			if s.Kind != lexer.String {
				return nil, p.errf("expected string after DATE")
			}
			p.next()
			return &ast.DateLit{Val: s.Text}, nil
		case "interval":
			p.next()
			s := p.peek()
			if s.Kind != lexer.String {
				return nil, p.errf("expected quoted count after INTERVAL")
			}
			p.next()
			n, err := strconv.ParseInt(s.Text, 10, 64)
			if err != nil {
				return nil, p.errf("bad interval count %q", s.Text)
			}
			u := p.peek()
			unit := strings.ToLower(u.Text)
			if u.Kind != lexer.Ident || (unit != "day" && unit != "month" && unit != "year") {
				return nil, p.errf("expected DAY, MONTH or YEAR after interval count")
			}
			p.next()
			return &ast.IntervalLit{N: n, Unit: unit}, nil
		case "case":
			return p.parseCase()
		case "exists":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.ExistsExpr{Query: q}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case lexer.Ident:
		// function call?
		if p.peek2().Kind == lexer.Symbol && p.peek2().Text == "(" {
			name := strings.ToLower(p.next().Text)
			p.next() // (
			fc := &ast.FuncCall{Name: name}
			if p.acceptSymbol("*") {
				fc.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKeyword("distinct") {
				fc.Distinct = true
			}
			if !p.isSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		p.next()
		id := &ast.Ident{Name: t.Text}
		if p.acceptSymbol(".") {
			c := p.peek()
			if c.Kind != lexer.Ident {
				return nil, p.errf("expected column after %q.", t.Text)
			}
			p.next()
			id.Table = t.Text
			id.Name = c.Text
		}
		return id, nil
	case lexer.Symbol:
		if t.Text == "(" {
			p.next()
			if p.isKeyword("select") {
				q, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &ast.SubqueryExpr{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.Text)
}

func (p *parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	c := &ast.CaseExpr{}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}
