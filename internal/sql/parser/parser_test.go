package parser

import (
	"strings"
	"testing"

	"orthoq/internal/sql/ast"
)

func mustParse(t *testing.T, sql string) ast.Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func sel(t *testing.T, sql string) *ast.SelectStmt {
	t.Helper()
	q := mustParse(t, sql)
	s, ok := q.(*ast.SelectStmt)
	if !ok {
		t.Fatalf("want SelectStmt, got %T", q)
	}
	return s
}

func TestBasicSelect(t *testing.T) {
	s := sel(t, "select a, b as bee, t.c from t where a < 10")
	if len(s.Items) != 3 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
	if id, ok := s.Items[2].Expr.(*ast.Ident); !ok || id.Table != "t" || id.Name != "c" {
		t.Errorf("qualified ident = %#v", s.Items[2].Expr)
	}
	if _, ok := s.Where.(*ast.BinaryExpr); !ok {
		t.Errorf("where = %#v", s.Where)
	}
}

func TestStarForms(t *testing.T) {
	s := sel(t, "select * from t")
	if !s.Items[0].Star || s.Items[0].Table != "" {
		t.Errorf("star item = %#v", s.Items[0])
	}
	s = sel(t, "select t.*, a from t")
	if !s.Items[0].Star || s.Items[0].Table != "t" {
		t.Errorf("t.* item = %#v", s.Items[0])
	}
	if s.Items[1].Star {
		t.Error("second item is not star")
	}
}

func TestImplicitAliasWithoutAS(t *testing.T) {
	s := sel(t, "select sum(x) total from t u")
	if s.Items[0].Alias != "total" {
		t.Errorf("alias = %q", s.Items[0].Alias)
	}
	tn := s.From[0].(*ast.TableName)
	if tn.Name != "t" || tn.Alias != "u" {
		t.Errorf("from = %#v", tn)
	}
}

func TestJoinForms(t *testing.T) {
	s := sel(t, `select * from a join b on a.x = b.x
		left outer join c on b.y = c.y cross join d`)
	top, ok := s.From[0].(*ast.JoinExpr)
	if !ok || top.Kind != ast.JoinCross {
		t.Fatalf("top join = %#v", s.From[0])
	}
	mid := top.Left.(*ast.JoinExpr)
	if mid.Kind != ast.JoinLeftOuter || mid.On == nil {
		t.Errorf("mid join = %#v", mid)
	}
	inner := mid.Left.(*ast.JoinExpr)
	if inner.Kind != ast.JoinInner {
		t.Errorf("inner join = %#v", inner)
	}
}

func TestCommaFrom(t *testing.T) {
	s := sel(t, "select * from a, b, c where a.x = b.x")
	if len(s.From) != 3 {
		t.Errorf("from = %d items", len(s.From))
	}
}

func TestDerivedTable(t *testing.T) {
	s := sel(t, `select v from (select x as v from t group by x) as d where v > 0`)
	dt, ok := s.From[0].(*ast.DerivedTable)
	if !ok || dt.Alias != "d" {
		t.Fatalf("derived = %#v", s.From[0])
	}
	inner := dt.Query.(*ast.SelectStmt)
	if len(inner.GroupBy) != 1 {
		t.Errorf("inner group by = %d", len(inner.GroupBy))
	}
	// Alias required.
	if _, err := Parse("select * from (select 1 as one)"); err == nil {
		t.Error("derived table without alias accepted")
	}
}

func TestDerivedTableColumnAliases(t *testing.T) {
	s := sel(t, "select a from (select 1 as one, 2 as two) as d(a, b)")
	dt := s.From[0].(*ast.DerivedTable)
	if len(dt.ColAliases) != 2 || dt.ColAliases[0] != "a" {
		t.Errorf("col aliases = %v", dt.ColAliases)
	}
}

func TestScalarSubqueryAndExists(t *testing.T) {
	s := sel(t, `select c_custkey from customer
		where 1000000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)`)
	cmp := s.Where.(*ast.BinaryExpr)
	if cmp.Op != "<" {
		t.Fatalf("op = %q", cmp.Op)
	}
	if _, ok := cmp.R.(*ast.SubqueryExpr); !ok {
		t.Errorf("rhs = %#v", cmp.R)
	}
	s = sel(t, `select 1 as one from t where exists (select 1 as one from u) and not exists (select 2 as two from v)`)
	and := s.Where.(*ast.BinaryExpr)
	if _, ok := and.L.(*ast.ExistsExpr); !ok {
		t.Errorf("lhs = %#v", and.L)
	}
	not := and.R.(*ast.UnaryExpr)
	if _, ok := not.Arg.(*ast.ExistsExpr); !ok || not.Op != "not" {
		t.Errorf("rhs = %#v", and.R)
	}
}

func TestInForms(t *testing.T) {
	s := sel(t, "select 1 as one from t where x in (1, 2, 3) and y not in (select z from u)")
	and := s.Where.(*ast.BinaryExpr)
	inl := and.L.(*ast.InExpr)
	if len(inl.List) != 3 || inl.Not {
		t.Errorf("in list = %#v", inl)
	}
	inq := and.R.(*ast.InExpr)
	if inq.Query == nil || !inq.Not {
		t.Errorf("in subquery = %#v", inq)
	}
}

func TestQuantified(t *testing.T) {
	s := sel(t, "select 1 as one from t where x > all (select y from u) and x = any (select y from u)")
	and := s.Where.(*ast.BinaryExpr)
	qa := and.L.(*ast.QuantExpr)
	if !qa.All || qa.Op != ">" {
		t.Errorf("all = %#v", qa)
	}
	qs := and.R.(*ast.QuantExpr)
	if qs.All || qs.Op != "=" {
		t.Errorf("any = %#v", qs)
	}
}

func TestPrecedence(t *testing.T) {
	s := sel(t, "select 1 as one from t where a or b and not c")
	or := s.Where.(*ast.BinaryExpr)
	if or.Op != "or" {
		t.Fatalf("top = %q", or.Op)
	}
	and := or.R.(*ast.BinaryExpr)
	if and.Op != "and" {
		t.Fatalf("right of or = %q", and.Op)
	}
	if _, ok := and.R.(*ast.UnaryExpr); !ok {
		t.Errorf("not = %#v", and.R)
	}
	// arithmetic precedence
	s = sel(t, "select a + b * c - d as v from t")
	top := s.Items[0].Expr.(*ast.BinaryExpr)
	if top.Op != "-" {
		t.Fatalf("top arith = %q", top.Op)
	}
	add := top.L.(*ast.BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("left = %q", add.Op)
	}
	if mul := add.R.(*ast.BinaryExpr); mul.Op != "*" {
		t.Errorf("b*c = %q", mul.Op)
	}
}

func TestBetweenLikeIsNull(t *testing.T) {
	s := sel(t, `select 1 as one from t where a between 1 and 10
		and b not like 'x%' and c is not null and d is null`)
	conj := flattenAnd(s.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b := conj[0].(*ast.BetweenExpr); b.Not {
		t.Error("between negated")
	}
	if l := conj[1].(*ast.LikeExpr); !l.Not {
		t.Error("not like lost")
	}
	if n := conj[2].(*ast.IsNullExpr); !n.Not {
		t.Error("is not null lost")
	}
	if n := conj[3].(*ast.IsNullExpr); n.Not {
		t.Error("is null wrong")
	}
}

func flattenAnd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == "and" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []ast.Expr{e}
}

func TestAggregates(t *testing.T) {
	s := sel(t, "select count(*) as c, count(distinct x) as d, sum(y + 1) as s from t group by z having count(*) > 5")
	if fc := s.Items[0].Expr.(*ast.FuncCall); !fc.Star || fc.Name != "count" {
		t.Errorf("count(*) = %#v", fc)
	}
	if fc := s.Items[1].Expr.(*ast.FuncCall); !fc.Distinct {
		t.Errorf("count(distinct) = %#v", fc)
	}
	if s.Having == nil {
		t.Error("having lost")
	}
}

func TestCase(t *testing.T) {
	s := sel(t, "select case when a > 0 then 1 when a < 0 then -1 else 0 end as sign from t")
	c := s.Items[0].Expr.(*ast.CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %#v", c)
	}
	if _, err := Parse("select case else 0 end as x from t"); err == nil {
		t.Error("CASE without WHEN accepted")
	}
}

func TestUnionAll(t *testing.T) {
	q := mustParse(t, "select a from t union all select b from u union all select c from v")
	u, ok := q.(*ast.UnionStmt)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if _, ok := u.Left.(*ast.UnionStmt); !ok {
		t.Error("union should be left-associative")
	}
	if _, err := Parse("select a from t union select b from u"); err == nil {
		t.Error("bare UNION (distinct) should be rejected")
	}
}

func TestOrderLimitDateLiterals(t *testing.T) {
	s := sel(t, "select a from t where d >= date '1994-01-01' order by a desc, b limit 10")
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order = %#v", s.OrderBy)
	}
	if s.Limit == nil || *s.Limit != 10 {
		t.Errorf("limit = %v", s.Limit)
	}
	cmp := s.Where.(*ast.BinaryExpr)
	if d, ok := cmp.R.(*ast.DateLit); !ok || d.Val != "1994-01-01" {
		t.Errorf("date = %#v", cmp.R)
	}
}

func TestStringEscapes(t *testing.T) {
	s := sel(t, "select 'it''s' as v")
	if lit := s.Items[0].Expr.(*ast.StringLit); lit.Val != "it's" {
		t.Errorf("escaped string = %q", lit.Val)
	}
}

func TestComments(t *testing.T) {
	sel(t, `select a -- trailing comment
		from t -- another
		where a > 0`)
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a from",
		"select a from t where",
		"select a from t group",
		"select a from t join u",      // missing ON
		"select a from (select b)",    // derived needs alias
		"select a from t limit x",     // non-numeric limit
		"select a from t; select b",   // trailing garbage
		"select 'unterminated from t", // bad string
		"select a from t where x in ()",
		"select a betwixt 1 and 2 from t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("select a\nfrom t whre x")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestPaperQ1(t *testing.T) {
	// The paper's running example must parse.
	mustParse(t, `
		select c_custkey
		from customer
		where 1000000 <
			(select sum(o_totalprice)
			 from orders
			 where o_custkey = c_custkey)`)
}

func TestPaperClass2Query(t *testing.T) {
	// The §2.5 class-2 example (UNION ALL inside a correlated subquery).
	mustParse(t, `
		select ps_partkey
		from partsupp
		where 100 >
			(select sum(s_acctbal) from
				(select s_acctbal
				 from supplier
				 where s_suppkey = ps_suppkey
				 union all
				 select p_retailprice
				 from part
				 where p_partkey = ps_partkey) as unionresult)`)
}

func TestTPCHQ17(t *testing.T) {
	mustParse(t, `
		select sum(l_extendedprice) / 7.0 as avg_yearly
		from lineitem, part
		where p_partkey = l_partkey
		  and p_brand = 'Brand#23'
		  and p_container = 'MED BOX'
		  and l_quantity < (
			select 0.2 * avg(l_quantity)
			from lineitem
			where l_partkey = p_partkey)`)
}

func TestExceptAll(t *testing.T) {
	q := mustParse(t, "select a from t except all select b from u")
	e, ok := q.(*ast.ExceptStmt)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if _, ok := e.Left.(*ast.SelectStmt); !ok {
		t.Error("left branch")
	}
	if _, err := Parse("select a from t except select b from u"); err == nil {
		t.Error("bare EXCEPT (distinct) should be rejected")
	}
	// Mixed chains associate left.
	q2 := mustParse(t, "select a from t union all select b from u except all select c from v")
	if _, ok := q2.(*ast.ExceptStmt); !ok {
		t.Fatalf("mixed chain root = %T", q2)
	}
}

func TestWithClause(t *testing.T) {
	q := mustParse(t, `
		with rev (sk, total) as (
			select l_suppkey, sum(l_extendedprice) from lineitem group by l_suppkey),
		top as (select max(total) as m from rev)
		select sk from rev, top where total = m`)
	w, ok := q.(*ast.WithStmt)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if len(w.CTEs) != 2 || w.CTEs[0].Name != "rev" || len(w.CTEs[0].ColAliases) != 2 {
		t.Errorf("ctes = %+v", w.CTEs)
	}
	if _, ok := w.Body.(*ast.SelectStmt); !ok {
		t.Errorf("body = %T", w.Body)
	}
	if _, err := Parse("with as (select 1 as x) select 1 as y"); err == nil {
		t.Error("nameless CTE accepted")
	}
}

func TestIntervalLiteral(t *testing.T) {
	s := sel(t, "select a from t where d < date '1993-10-01' + interval '3' month")
	cmp := s.Where.(*ast.BinaryExpr)
	add := cmp.R.(*ast.BinaryExpr)
	iv, ok := add.R.(*ast.IntervalLit)
	if !ok || iv.N != 3 || iv.Unit != "month" {
		t.Fatalf("interval = %#v", add.R)
	}
	for _, bad := range []string{
		"select a from t where d < interval month",
		"select a from t where d < interval '3' fortnight",
		"select a from t where d < interval 'x' day",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
