package parser

import (
	"testing"

	"orthoq/internal/sql/ast"
	"orthoq/internal/tpch"
)

// TestFormatParseFixpoint: for every benchmark query (and a battery of
// feature-covering statements), Format(Parse(sql)) must re-parse, and
// formatting must reach a fixpoint after one round (print∘parse∘print
// = print).
func TestFormatParseFixpoint(t *testing.T) {
	inputs := []string{
		"select 1 as one",
		"select distinct a, b as bee, t.c from t as u where a < 10 and b like 'x%'",
		"select * from a join b on a.x = b.x left outer join c on b.y = c.y",
		"select a from t where x in (1, 2, 3) and y not in (select z from u)",
		"select a from t where exists (select 1 as one from u) or not a between 1 and 2",
		"select count(*) as n, sum(distinct v) as s from t group by g having count(*) > 2",
		"select case when a > 0 then 'p' else 'n' end as sign from t order by sign desc limit 3",
		"select a from t union all select b from u except all select c from v",
		"with w (x) as (select a from t) select x from w",
		"select a from t where d >= date '1994-01-01' + interval '3' month",
		"select a from t where v > all (select w from u)",
		"select x.* , -a as neg from t as x",
	}
	for _, q := range tpch.Queries {
		inputs = append(inputs, q)
	}
	for i, sql := range inputs {
		q1, err := Parse(sql)
		if err != nil {
			t.Fatalf("input %d does not parse: %v\n%s", i, err, sql)
		}
		printed := ast.Format(q1)
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("input %d: formatted SQL does not re-parse: %v\nsql: %s\nprinted: %s",
				i, err, sql, printed)
		}
		printed2 := ast.Format(q2)
		if printed != printed2 {
			t.Errorf("input %d: formatting is not a fixpoint\nfirst:  %s\nsecond: %s",
				i, printed, printed2)
		}
	}
}
