package types

import (
	"fmt"
	"time"
)

// BinOp enumerates arithmetic operators on datums.
type BinOp uint8

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String renders the operator symbol.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Arith evaluates a op b with SQL semantics: NULL operands propagate to
// a NULL result; Int op Int stays Int (except division by zero, which is
// an error); mixed numeric promotes to Float. Date +/- Int yields Date.
func Arith(op BinOp, a, b Datum) (Datum, error) {
	if a.null || b.null {
		return Null(resultKind(op, a.kind, b.kind)), nil
	}
	// Date arithmetic: date ± int days.
	if a.kind == Date && b.kind == Int && (op == OpAdd || op == OpSub) {
		if op == OpAdd {
			return NewDate(a.i + b.i), nil
		}
		return NewDate(a.i - b.i), nil
	}
	if a.kind == Date && b.kind == Date && op == OpSub {
		return NewInt(a.i - b.i), nil
	}
	if a.kind == Int && b.kind == Int {
		switch op {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		case OpDiv:
			if b.i == 0 {
				return NullUnknown, fmt.Errorf("division by zero")
			}
			return NewInt(a.i / b.i), nil
		case OpMod:
			if b.i == 0 {
				return NullUnknown, fmt.Errorf("division by zero")
			}
			return NewInt(a.i % b.i), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return NullUnknown, fmt.Errorf("invalid operands for %s: %s, %s", op, a.kind, b.kind)
	}
	switch op {
	case OpAdd:
		return NewFloat(af + bf), nil
	case OpSub:
		return NewFloat(af - bf), nil
	case OpMul:
		return NewFloat(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return NullUnknown, fmt.Errorf("division by zero")
		}
		return NewFloat(af / bf), nil
	case OpMod:
		return NullUnknown, fmt.Errorf("modulo requires integers")
	}
	return NullUnknown, fmt.Errorf("unknown operator")
}

func resultKind(op BinOp, a, b Kind) Kind {
	if a == Date || b == Date {
		if a == Date && b == Date && op == OpSub {
			return Int
		}
		return Date
	}
	if a == Float || b == Float {
		return Float
	}
	if a == Int && b == Int {
		return Int
	}
	return Unknown
}

// AddInterval shifts a Date datum by n calendar units ("day",
// "month" or "year"), with month/year arithmetic following Go's
// time.AddDate normalization. It supports the SQL
// "date ± interval 'n' unit" construct.
func AddInterval(d Datum, n int64, unit string) (Datum, error) {
	if d.IsNull() {
		return Null(Date), nil
	}
	if d.Kind() != Date {
		return NullUnknown, fmt.Errorf("interval arithmetic requires a date, got %s", d.Kind())
	}
	t := timeFromDays(d.Days())
	switch unit {
	case "day":
		t = t.AddDate(0, 0, int(n))
	case "month":
		t = t.AddDate(0, int(n), 0)
	case "year":
		t = t.AddDate(int(n), 0, 0)
	default:
		return NullUnknown, fmt.Errorf("unknown interval unit %q", unit)
	}
	return NewDate(t.Unix() / 86400), nil
}

func timeFromDays(days int64) time.Time {
	return time.Unix(days*86400, 0).UTC()
}

// Like implements the SQL LIKE predicate with % and _ wildcards. NULL
// operands yield TriNull.
func Like(s, pattern Datum) TriBool {
	if s.null || pattern.null {
		return TriNull
	}
	return TriOf(likeMatch(s.s, pattern.s))
}

func likeMatch(s, p string) bool {
	// Classic two-pointer wildcard match over bytes; TPC-H data is ASCII.
	var si, pi int
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star != -1:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
