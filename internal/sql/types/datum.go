// Package types implements the SQL value domain used throughout the
// engine: nullable datums over a small set of primitive types, SQL
// comparison and arithmetic semantics (including three-valued logic),
// and hashing support for join and aggregation operators.
//
// The representation is a single flat struct so that rows ([]Datum) are
// contiguous and comparison does not allocate.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the primitive SQL types supported by the engine.
type Kind uint8

// The supported kinds. Unknown is the kind of an untyped NULL.
const (
	Unknown Kind = iota
	Bool
	Int    // 64-bit signed integer
	Float  // 64-bit IEEE float; also used for SQL DECIMAL in this engine
	String // variable-length character data
	Date   // days since 1970-01-01
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Unknown:
		return "unknown"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind supports arithmetic.
func (k Kind) Numeric() bool { return k == Int || k == Float }

// Datum is a single nullable SQL value. The zero value is the untyped
// NULL. Datums are immutable by convention: operators copy rather than
// mutate them.
type Datum struct {
	kind Kind
	null bool
	i    int64 // Int, Date and Bool (0/1) payload
	f    float64
	s    string
}

// Null constructs a typed NULL of the given kind.
func Null(k Kind) Datum { return Datum{kind: k, null: true} }

// NullUnknown is the untyped NULL.
var NullUnknown = Datum{kind: Unknown, null: true}

// NewInt returns an Int datum.
func NewInt(v int64) Datum { return Datum{kind: Int, i: v} }

// NewFloat returns a Float datum.
func NewFloat(v float64) Datum { return Datum{kind: Float, f: v} }

// NewString returns a String datum.
func NewString(v string) Datum { return Datum{kind: String, s: v} }

// NewBool returns a Bool datum.
func NewBool(v bool) Datum {
	d := Datum{kind: Bool}
	if v {
		d.i = 1
	}
	return d
}

// NewDate returns a Date datum holding days since the Unix epoch.
func NewDate(days int64) Datum { return Datum{kind: Date, i: days} }

// DateFromString parses "YYYY-MM-DD" into a Date datum.
func DateFromString(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NullUnknown, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustDate is DateFromString that panics on malformed input. It is
// intended for compile-time-constant dates in tests and generators.
func MustDate(s string) Datum {
	d, err := DateFromString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Kind returns the datum's type.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.null }

// Int returns the integer payload. It is valid only for Int kind.
func (d Datum) Int() int64 { return d.i }

// Float returns the float payload. It is valid only for Float kind.
func (d Datum) Float() float64 { return d.f }

// Str returns the string payload. It is valid only for String kind.
func (d Datum) Str() string { return d.s }

// Bool returns the boolean payload. It is valid only for Bool kind.
func (d Datum) Bool() bool { return d.i != 0 }

// Days returns the date payload (days since epoch), valid for Date kind.
func (d Datum) Days() int64 { return d.i }

// AsFloat converts a numeric datum to float64. NULL converts to 0 with
// ok=false.
func (d Datum) AsFloat() (v float64, ok bool) {
	if d.null {
		return 0, false
	}
	switch d.kind {
	case Int:
		return float64(d.i), true
	case Float:
		return d.f, true
	}
	return 0, false
}

// String renders the datum for display and plan formatting.
func (d Datum) String() string {
	if d.null {
		return "NULL"
	}
	switch d.kind {
	case Bool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(d.i, 10)
	case Float:
		return strconv.FormatFloat(d.f, 'f', -1, 64)
	case String:
		return "'" + d.s + "'"
	case Date:
		return time.Unix(d.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return "?"
	}
}

// Compare orders two datums. NULLs sort before all non-NULL values
// (this total order is used for sorting and ordered indexes; SQL
// comparison semantics with NULL propagation live in CompareSQL).
// Cross-kind numeric comparisons (Int vs Float) are supported; any other
// kind mismatch panics, since the algebrizer assigns consistent types.
func Compare(a, b Datum) int {
	switch {
	case a.null && b.null:
		return 0
	case a.null:
		return -1
	case b.null:
		return 1
	}
	if a.kind != b.kind {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if aok && bok {
			return cmpFloat(af, bf)
		}
		panic(fmt.Sprintf("types: cannot compare %s with %s", a.kind, b.kind))
	}
	switch a.kind {
	case Bool, Int, Date:
		return cmpInt(a.i, b.i)
	case Float:
		return cmpFloat(a.f, b.f)
	case String:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// TriBool is SQL three-valued logic: True, False or Null.
type TriBool uint8

// Three-valued logic constants.
const (
	TriFalse TriBool = iota
	TriTrue
	TriNull
)

// String renders a TriBool.
func (t TriBool) String() string {
	switch t {
	case TriTrue:
		return "true"
	case TriFalse:
		return "false"
	default:
		return "null"
	}
}

// TriOf lifts a Go bool into TriBool.
func TriOf(b bool) TriBool {
	if b {
		return TriTrue
	}
	return TriFalse
}

// And is 3VL conjunction.
func (t TriBool) And(o TriBool) TriBool {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriTrue
}

// Or is 3VL disjunction.
func (t TriBool) Or(o TriBool) TriBool {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriFalse
}

// Not is 3VL negation.
func (t TriBool) Not() TriBool {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriNull
	}
}

// CompareSQL compares with SQL semantics: if either operand is NULL the
// result of any comparison is unknown (TriNull); otherwise cmp receives
// the ordering result.
func CompareSQL(a, b Datum, test func(int) bool) TriBool {
	if a.null || b.null {
		return TriNull
	}
	return TriOf(test(Compare(a, b)))
}

// Equal reports strict equality used for grouping and duplicate
// elimination: NULLs compare equal to each other (SQL GROUP BY
// semantics), and values equal per Compare.
func Equal(a, b Datum) bool {
	if a.null || b.null {
		return a.null == b.null
	}
	return Compare(a, b) == 0
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a hash of the datum consistent with Equal: datums that
// are Equal hash identically (numeric kinds hash via their float value
// so 1 and 1.0 collide, matching Compare). FNV-1a is used directly —
// it is allocation-free and an order of magnitude faster than a
// per-datum maphash, which matters in hash joins and aggregation.
func (d Datum) Hash() uint64 {
	if d.null {
		return fnvByte(fnvOffset, 0)
	}
	switch d.kind {
	case Bool:
		return fnvUint64(fnvByte(fnvOffset, 1), uint64(d.i))
	case Int, Float:
		// Hash numerics through float64 so Int(1) and Float(1.0),
		// which compare equal, hash equal too.
		var f float64
		if d.kind == Int {
			f = float64(d.i)
		} else {
			f = d.f
		}
		return fnvUint64(fnvByte(fnvOffset, 2), math.Float64bits(f))
	case Date:
		return fnvUint64(fnvByte(fnvOffset, 3), uint64(d.i))
	case String:
		h := fnvByte(fnvOffset, 4)
		for i := 0; i < len(d.s); i++ {
			h = fnvByte(h, d.s[i])
		}
		return h
	}
	return fnvOffset
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// Row is a tuple of datums. Rows are positional; the optimizer maps
// column IDs to ordinals when building the physical plan.
type Row []Datum

// Clone returns a deep-enough copy of the row (datums are values).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// HashRow hashes the datums at the given ordinals, for hash joins and
// hash aggregation.
func HashRow(r Row, ords []int) uint64 {
	var acc uint64 = 14695981039346656037
	for _, o := range ords {
		h := r[o].Hash()
		acc ^= h
		acc *= 1099511628211
	}
	return acc
}

// EqualRows reports whether rows agree (per Equal) on the given ordinal
// pairs.
func EqualRows(a Row, aOrds []int, b Row, bOrds []int) bool {
	for i := range aOrds {
		if !Equal(a[aOrds[i]], b[bOrds[i]]) {
			return false
		}
	}
	return true
}
