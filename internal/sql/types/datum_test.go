package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDatumConstructorsAndAccessors(t *testing.T) {
	if d := NewInt(42); d.Kind() != Int || d.Int() != 42 || d.IsNull() {
		t.Errorf("NewInt: got %v", d)
	}
	if d := NewFloat(2.5); d.Kind() != Float || d.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", d)
	}
	if d := NewString("xy"); d.Kind() != String || d.Str() != "xy" {
		t.Errorf("NewString: got %v", d)
	}
	if d := NewBool(true); d.Kind() != Bool || !d.Bool() {
		t.Errorf("NewBool: got %v", d)
	}
	if d := Null(Int); !d.IsNull() || d.Kind() != Int {
		t.Errorf("Null: got %v", d)
	}
}

func TestDateRoundTrip(t *testing.T) {
	d, err := DateFromString("1994-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "1994-01-01" {
		t.Errorf("date round trip: got %s", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("expected error for malformed date")
	}
	// Epoch sanity.
	if d := MustDate("1970-01-01"); d.Days() != 0 {
		t.Errorf("epoch: got %d days", d.Days())
	}
	if d := MustDate("1970-01-02"); d.Days() != 1 {
		t.Errorf("epoch+1: got %d days", d.Days())
	}
}

func TestCompareTotalOrder(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null(Int), NewInt(-100), -1},
		{NewInt(-100), Null(Int), 1},
		{Null(Int), Null(String), 0},
		{NewBool(false), NewBool(true), -1},
		{MustDate("1994-01-01"), MustDate("1995-01-01"), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareSQLNullPropagation(t *testing.T) {
	lt := func(c int) bool { return c < 0 }
	if got := CompareSQL(Null(Int), NewInt(1), lt); got != TriNull {
		t.Errorf("NULL < 1 = %v, want null", got)
	}
	if got := CompareSQL(NewInt(0), NewInt(1), lt); got != TriTrue {
		t.Errorf("0 < 1 = %v, want true", got)
	}
	if got := CompareSQL(NewInt(2), NewInt(1), lt); got != TriFalse {
		t.Errorf("2 < 1 = %v, want false", got)
	}
}

func TestTriBoolTables(t *testing.T) {
	vals := []TriBool{TriTrue, TriFalse, TriNull}
	// Kleene logic truth tables.
	and := map[[2]TriBool]TriBool{
		{TriTrue, TriTrue}: TriTrue, {TriTrue, TriFalse}: TriFalse, {TriTrue, TriNull}: TriNull,
		{TriFalse, TriTrue}: TriFalse, {TriFalse, TriFalse}: TriFalse, {TriFalse, TriNull}: TriFalse,
		{TriNull, TriTrue}: TriNull, {TriNull, TriFalse}: TriFalse, {TriNull, TriNull}: TriNull,
	}
	or := map[[2]TriBool]TriBool{
		{TriTrue, TriTrue}: TriTrue, {TriTrue, TriFalse}: TriTrue, {TriTrue, TriNull}: TriTrue,
		{TriFalse, TriTrue}: TriTrue, {TriFalse, TriFalse}: TriFalse, {TriFalse, TriNull}: TriNull,
		{TriNull, TriTrue}: TriTrue, {TriNull, TriFalse}: TriNull, {TriNull, TriNull}: TriNull,
	}
	for _, a := range vals {
		for _, b := range vals {
			if got := a.And(b); got != and[[2]TriBool{a, b}] {
				t.Errorf("%v AND %v = %v", a, b, got)
			}
			if got := a.Or(b); got != or[[2]TriBool{a, b}] {
				t.Errorf("%v OR %v = %v", a, b, got)
			}
		}
	}
	if TriNull.Not() != TriNull || TriTrue.Not() != TriFalse || TriFalse.Not() != TriTrue {
		t.Error("Not table wrong")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if !Equal(Null(Int), Null(String)) {
		t.Error("grouping equality: NULL == NULL must hold")
	}
	if Equal(Null(Int), NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewInt(1), NewFloat(1.0)) {
		t.Error("1 == 1.0 for grouping")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Datum{
		{NewInt(1), NewFloat(1.0)},
		{Null(Int), Null(Float)},
		{NewString("abc"), NewString("abc")},
		{MustDate("1994-06-01"), MustDate("1994-06-01")},
	}
	for _, p := range pairs {
		if Equal(p[0], p[1]) && p[0].Hash() != p[1].Hash() {
			t.Errorf("equal datums %v, %v hash differently", p[0], p[1])
		}
	}
}

// randDatum generates a random datum for property tests.
func randDatum(r *rand.Rand) Datum {
	switch r.Intn(6) {
	case 0:
		return Null(Kind(r.Intn(5)))
	case 1:
		return NewInt(int64(r.Intn(20) - 10))
	case 2:
		return NewFloat(float64(r.Intn(20)-10) / 2)
	case 3:
		return NewString(string(rune('a' + r.Intn(5))))
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewDate(int64(r.Intn(1000)))
	}
}

// genDatum wraps randDatum for testing/quick.
type genDatum struct{ D Datum }

// Generate implements quick.Generator.
func (genDatum) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genDatum{randDatum(r)})
}

func comparable2(a, b Datum) bool {
	if a.IsNull() || b.IsNull() {
		return true
	}
	if a.Kind() == b.Kind() {
		return true
	}
	return a.Kind().Numeric() && b.Kind().Numeric()
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(x, y genDatum) bool {
		if !comparable2(x.D, y.D) {
			return true
		}
		return Compare(x.D, y.D) == -Compare(y.D, x.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(x, y, z genDatum) bool {
		if !comparable2(x.D, y.D) || !comparable2(y.D, z.D) || !comparable2(x.D, z.D) {
			return true
		}
		if Compare(x.D, y.D) <= 0 && Compare(y.D, z.D) <= 0 {
			return Compare(x.D, z.D) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashEqualConsistencyProperty(t *testing.T) {
	f := func(x, y genDatum) bool {
		if !comparable2(x.D, y.D) {
			return true
		}
		if Equal(x.D, y.D) {
			return x.D.Hash() == y.D.Hash()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	tri := func(n uint8) TriBool { return TriBool(n % 3) }
	f := func(a, b uint8) bool {
		x, y := tri(a), tri(b)
		return x.And(y).Not() == x.Not().Or(y.Not()) &&
			x.Or(y).Not() == x.Not().And(y.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithBasics(t *testing.T) {
	mustArith := func(op BinOp, a, b Datum) Datum {
		t.Helper()
		d, err := Arith(op, a, b)
		if err != nil {
			t.Fatalf("Arith(%v,%v,%v): %v", op, a, b, err)
		}
		return d
	}
	if d := mustArith(OpAdd, NewInt(2), NewInt(3)); d.Int() != 5 {
		t.Errorf("2+3 = %v", d)
	}
	if d := mustArith(OpMul, NewInt(2), NewFloat(1.5)); d.Float() != 3.0 {
		t.Errorf("2*1.5 = %v", d)
	}
	if d := mustArith(OpDiv, NewFloat(7), NewFloat(2)); d.Float() != 3.5 {
		t.Errorf("7/2 = %v", d)
	}
	if d := mustArith(OpSub, MustDate("1994-01-02"), NewInt(1)); d.String() != "1994-01-01" {
		t.Errorf("date-1 = %v", d)
	}
	if d := mustArith(OpSub, MustDate("1994-01-03"), MustDate("1994-01-01")); d.Int() != 2 {
		t.Errorf("date-date = %v", d)
	}
	if _, err := Arith(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Error("expected division by zero error")
	}
	if d := mustArith(OpAdd, Null(Int), NewInt(1)); !d.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", d)
	}
	if d := mustArith(OpMod, NewInt(7), NewInt(3)); d.Int() != 1 {
		t.Errorf("7%%3 = %v", d)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"MED BOX", "MED BOX", true},
		{"MED BOX", "MED%", true},
		{"MED BOX", "%BOX", true},
		{"MED BOX", "%ED%", true},
		{"MED BOX", "M_D BOX", true},
		{"MED BOX", "LG%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%", true},
		{"promo burnished", "promo%", true},
		{"standard", "%promo%", false},
	}
	for _, c := range cases {
		if got := Like(NewString(c.s), NewString(c.p)); got != TriOf(c.want) {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if Like(Null(String), NewString("%")) != TriNull {
		t.Error("NULL LIKE '%' must be null")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), Null(Int)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewString("x"), NewInt(1)}
	if !EqualRows(a, []int{0, 1}, b, []int{1, 0}) {
		t.Error("EqualRows with ordinal mapping failed")
	}
	if HashRow(a, []int{0, 1}) != HashRow(b, []int{1, 0}) {
		t.Error("HashRow must agree under ordinal mapping")
	}
}
