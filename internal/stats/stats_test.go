package stats

import (
	"math/rand"
	"testing"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
	"orthoq/internal/storage"
)

func buildStore(t *testing.T, n int, f func(i int) types.Row) *storage.Store {
	t.Helper()
	st := storage.New(catalog.New())
	tbl, err := st.CreateTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: types.Int},
			{Name: "grp", Type: types.Int},
			{Name: "val", Type: types.Float, Nullable: true},
			{Name: "name", Type: types.String},
		},
		Key: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.Insert(f(i)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestCollectBasics(t *testing.T) {
	st := buildStore(t, 1000, func(i int) types.Row {
		var v types.Datum
		if i%10 == 0 {
			v = types.NullUnknown
		} else {
			v = types.NewFloat(float64(i))
		}
		return types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 7)), v,
			types.NewString([]string{"a", "b", "c"}[i%3]),
		}
	})
	c := Collect(st)
	ts := c.Table("t")
	if ts == nil {
		t.Fatal("no stats for t")
	}
	if ts.RowCount != 1000 {
		t.Errorf("rows = %d", ts.RowCount)
	}
	id := ts.Columns[0]
	if id.Distinct != 1000 || id.NullCount != 0 {
		t.Errorf("id: distinct=%d nulls=%d", id.Distinct, id.NullCount)
	}
	if id.Min.Int() != 0 || id.Max.Int() != 999 {
		t.Errorf("id range = [%v, %v]", id.Min, id.Max)
	}
	grp := ts.Columns[1]
	if grp.Distinct != 7 {
		t.Errorf("grp distinct = %d", grp.Distinct)
	}
	val := ts.Columns[2]
	if val.NullCount != 100 {
		t.Errorf("val nulls = %d", val.NullCount)
	}
	name := ts.Columns[3]
	if name.Distinct != 3 {
		t.Errorf("name distinct = %d", name.Distinct)
	}
	if len(name.Hist) != 0 {
		t.Error("strings must not get histograms")
	}
	if len(id.Hist) == 0 {
		t.Error("id should have a histogram")
	}
	// Case-insensitive lookup and missing table.
	if c.Table("T") == nil {
		t.Error("case-insensitive stats lookup failed")
	}
	if c.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
}

func TestSelectivityLTAgainstTruth(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	vals := make([]int64, 5000)
	st := buildStore(t, 5000, func(i int) types.Row {
		v := int64(rnd.Intn(10000))
		vals[i] = v
		return types.Row{types.NewInt(int64(i)), types.NewInt(v),
			types.NewFloat(0), types.NewString("x")}
	})
	c := Collect(st)
	grp := &c.Table("t").Columns[1]
	for _, threshold := range []int64{0, 1000, 2500, 5000, 9000, 10000} {
		truth := 0
		for _, v := range vals {
			if v < threshold {
				truth++
			}
		}
		want := float64(truth) / 5000
		got := grp.SelectivityLT(types.NewInt(threshold), 5000)
		if diff := got - want; diff > 0.08 || diff < -0.08 {
			t.Errorf("LT(%d): got %.3f, truth %.3f", threshold, got, want)
		}
	}
}

func TestSelectivityEq(t *testing.T) {
	st := buildStore(t, 700, func(i int) types.Row {
		return types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7)),
			types.NewFloat(0), types.NewString("x")}
	})
	c := Collect(st)
	grp := &c.Table("t").Columns[1]
	got := grp.SelectivityEq(700)
	if got < 0.13 || got > 0.15 { // 1/7 ≈ 0.143
		t.Errorf("eq selectivity = %.3f, want ~1/7", got)
	}
	// Degenerate column stats fall back to a default.
	empty := &ColumnStats{}
	if s := empty.SelectivityEq(0); s <= 0 || s > 1 {
		t.Errorf("degenerate eq = %v", s)
	}
}

func TestSmallTableNoHistogram(t *testing.T) {
	st := buildStore(t, 10, func(i int) types.Row {
		return types.Row{types.NewInt(int64(i)), types.NewInt(int64(i)),
			types.NewFloat(0), types.NewString("x")}
	})
	c := Collect(st)
	id := c.Table("t").Columns[0]
	if len(id.Hist) != 0 {
		t.Error("tiny tables should skip histograms")
	}
	// Interpolation fallback still gives sane numbers.
	got := id.SelectivityLT(types.NewInt(5), 10)
	if got < 0.3 || got > 0.8 {
		t.Errorf("interpolated LT = %v", got)
	}
}
