// Version-set serialization: the binary row/schema codec shared by the
// write-ahead log (per-record row payloads) and the checkpointer (the
// whole published version set of a store). The encoding is
// self-describing per datum — kind byte with a NULL flag, then a
// fixed- or length-prefixed payload — so replay needs no schema
// context beyond the row itself, and a schema change between writer
// and reader surfaces as a decode error rather than silent
// misinterpretation.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

// nullFlag is OR-ed into the datum kind byte for SQL NULL values.
const nullFlag = 0x80

// AppendDatum appends the binary encoding of one datum to buf.
func AppendDatum(buf []byte, d types.Datum) []byte {
	k := byte(d.Kind())
	if d.IsNull() {
		return append(buf, k|nullFlag)
	}
	buf = append(buf, k)
	switch d.Kind() {
	case types.Bool:
		if d.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	case types.Int:
		return binary.AppendVarint(buf, d.Int())
	case types.Date:
		return binary.AppendVarint(buf, d.Days())
	case types.Float:
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Float()))
	case types.String:
		buf = binary.AppendUvarint(buf, uint64(len(d.Str())))
		return append(buf, d.Str()...)
	default:
		// Unknown non-NULL has no payload (it cannot be produced by the
		// engine; the byte keeps the stream decodable).
		return buf
	}
}

// DecodeDatum decodes one datum from buf, returning the remainder.
func DecodeDatum(buf []byte) (types.Datum, []byte, error) {
	if len(buf) == 0 {
		return types.Datum{}, nil, io.ErrUnexpectedEOF
	}
	k, buf := buf[0], buf[1:]
	kind := types.Kind(k &^ nullFlag)
	if k&nullFlag != 0 {
		return types.Null(kind), buf, nil
	}
	switch kind {
	case types.Bool:
		if len(buf) < 1 {
			return types.Datum{}, nil, io.ErrUnexpectedEOF
		}
		return types.NewBool(buf[0] != 0), buf[1:], nil
	case types.Int, types.Date:
		v, n := binary.Varint(buf)
		if n <= 0 {
			return types.Datum{}, nil, io.ErrUnexpectedEOF
		}
		if kind == types.Date {
			return types.NewDate(v), buf[n:], nil
		}
		return types.NewInt(v), buf[n:], nil
	case types.Float:
		if len(buf) < 8 {
			return types.Datum{}, nil, io.ErrUnexpectedEOF
		}
		return types.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(buf))), buf[8:], nil
	case types.String:
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return types.Datum{}, nil, io.ErrUnexpectedEOF
		}
		return types.NewString(string(buf[n : n+int(l)])), buf[n+int(l):], nil
	case types.Unknown:
		return types.NullUnknown, buf, nil
	default:
		return types.Datum{}, nil, fmt.Errorf("storage: unknown datum kind byte 0x%02x", k)
	}
}

// AppendRow appends one row (column count prefix + datums) to buf.
func AppendRow(buf []byte, row types.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, d := range row {
		buf = AppendDatum(buf, d)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning the remainder.
func DecodeRow(buf []byte) (types.Row, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	buf = buf[w:]
	row := make(types.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		var d types.Datum
		var err error
		d, buf, err = DecodeDatum(buf)
		if err != nil {
			return nil, nil, err
		}
		row = append(row, d)
	}
	return row, buf, nil
}

// AppendRows appends a row batch (count prefix + rows) to buf.
func AppendRows(buf []byte, rows []types.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = AppendRow(buf, r)
	}
	return buf
}

// DecodeRows decodes a row batch from buf, returning the remainder.
func DecodeRows(buf []byte) ([]types.Row, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	buf = buf[w:]
	rows := make([]types.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		var r types.Row
		var err error
		r, buf, err = DecodeRow(buf)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, r)
	}
	return rows, buf, nil
}

// AppendSchema appends a table schema (JSON, length-prefixed) to buf.
// Schemas are rare (one per CreateTable record, one per table per
// checkpoint) and carry nested structure, so the robustness of JSON
// beats a hand-rolled binary layout here.
func AppendSchema(buf []byte, t *catalog.Table) ([]byte, error) {
	js, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(js)))
	return append(buf, js...), nil
}

// DecodeSchema decodes a table schema from buf, returning the
// remainder.
func DecodeSchema(buf []byte) (*catalog.Table, []byte, error) {
	l, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < l {
		return nil, nil, io.ErrUnexpectedEOF
	}
	var t catalog.Table
	if err := json.Unmarshal(buf[w:w+int(l)], &t); err != nil {
		return nil, nil, fmt.Errorf("storage: bad schema: %w", err)
	}
	return &t, buf[w+int(l):], nil
}

// WriteSnapshot serializes a pinned snapshot — every table's schema,
// publication LSN, and rows — to w. Tables are written in sorted name
// order so the byte stream is deterministic for a given version set.
// The format is the checkpoint body; framing (magic, checkpoint LSN,
// CRC) belongs to the caller.
func WriteSnapshot(w io.Writer, sn *Snapshot) error {
	names := make([]string, 0, len(sn.versions))
	for name := range sn.versions {
		names = append(names, name)
	}
	sort.Strings(names)

	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(names)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	for _, name := range names {
		v := sn.versions[name]
		buf, err := AppendSchema(nil, v.Schema)
		if err != nil {
			return err
		}
		buf = binary.BigEndian.AppendUint64(buf, v.lsn)
		buf = AppendRows(buf, v.rows)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot deserializes a WriteSnapshot stream into a fresh store:
// catalog entries registered, rows loaded, and each table's version
// stamped with its serialized publication LSN. Indexes are not
// persisted — callers rebuild them (Analyze) after recovery.
func ReadSnapshot(buf []byte) (*Store, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, io.ErrUnexpectedEOF
	}
	buf = buf[w:]
	st := New(catalog.New())
	for i := uint64(0); i < n; i++ {
		schema, rest, err := DecodeSchema(buf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8 {
			return nil, io.ErrUnexpectedEOF
		}
		lsn := binary.BigEndian.Uint64(rest)
		rows, rest, err := DecodeRows(rest[8:])
		if err != nil {
			return nil, err
		}
		buf = rest
		t, err := st.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		t.Rows = rows
		t.publish(nil, nil, lsn)
		t.mu.Unlock()
	}
	return st, nil
}
