package storage

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

func TestDatumRoundTrip(t *testing.T) {
	datums := []types.Datum{
		types.NewBool(true),
		types.NewBool(false),
		types.NewInt(0),
		types.NewInt(-1),
		types.NewInt(math.MaxInt64),
		types.NewInt(math.MinInt64),
		types.NewFloat(0),
		types.NewFloat(-3.25),
		types.NewFloat(math.Inf(1)),
		types.NewDate(0),
		types.NewDate(19234),
		types.NewString(""),
		types.NewString("hello, 世界"),
		types.Null(types.Int),
		types.Null(types.String),
		types.Null(types.Float),
	}
	for _, d := range datums {
		buf := AppendDatum(nil, d)
		got, rest, err := DecodeDatum(buf)
		if err != nil {
			t.Fatalf("DecodeDatum(%v): %v", d, err)
		}
		if len(rest) != 0 {
			t.Errorf("DecodeDatum(%v) left %d trailing bytes", d, len(rest))
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("round trip: got %#v, want %#v", got, d)
		}
	}
}

func TestDatumDecodeTruncated(t *testing.T) {
	full := AppendDatum(nil, types.NewString("truncate me"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeDatum(full[:cut]); err == nil {
			t.Errorf("DecodeDatum accepted a %d/%d-byte prefix", cut, len(full))
		}
	}
}

func TestRowsRoundTrip(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a"), types.Null(types.Float)},
		{types.NewInt(2), types.NewString(""), types.NewFloat(2.5)},
		{}, // empty row
	}
	buf := AppendRows(nil, rows)
	got, rest, err := DecodeRows(buf)
	if err != nil {
		t.Fatalf("DecodeRows: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("DecodeRows left %d trailing bytes", len(rest))
	}
	if len(got) != len(rows) {
		t.Fatalf("DecodeRows returned %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Errorf("row %d: %d datums, want %d", i, len(got[i]), len(rows[i]))
			continue
		}
		if !reflect.DeepEqual(append(types.Row{}, got[i]...), append(types.Row{}, rows[i]...)) {
			t.Errorf("row %d: got %v, want %v", i, got[i], rows[i])
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	schema := &catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.Int},
			{Name: "o_comment", Type: types.String, Nullable: true},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "pk", Cols: []int{0}, Unique: true, Ordered: true},
		},
	}
	buf, err := AppendSchema(nil, schema)
	if err != nil {
		t.Fatalf("AppendSchema: %v", err)
	}
	got, rest, err := DecodeSchema(buf)
	if err != nil {
		t.Fatalf("DecodeSchema: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("DecodeSchema left %d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got, schema) {
		t.Errorf("schema round trip: got %+v, want %+v", got, schema)
	}
}

// A snapshot written and read back reproduces every table's schema,
// rows, and publication LSN.
func TestSnapshotRoundTrip(t *testing.T) {
	st := New(catalog.New())
	mk := func(name string, lsn uint64, rows ...types.Row) {
		tbl, err := st.CreateTable(&catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", Type: types.Int},
				{Name: "s", Type: types.String, Nullable: true},
			},
			Key: []int{0},
		})
		if err != nil {
			t.Fatalf("CreateTable(%s): %v", name, err)
		}
		if err := tbl.InsertAll(rows); err != nil {
			t.Fatalf("InsertAll(%s): %v", name, err)
		}
		tbl.mu.Lock()
		tbl.publish(nil, nil, lsn)
		tbl.mu.Unlock()
	}
	mk("a", 7, types.Row{types.NewInt(1), types.NewString("x")})
	mk("b", 9,
		types.Row{types.NewInt(1), types.Null(types.String)},
		types.Row{types.NewInt(2), types.NewString("y")})

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st.Snapshot()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	for name, wantLSN := range map[string]uint64{"a": 7, "b": 9} {
		src, _ := st.Table(name)
		dst, ok := got.Table(name)
		if !ok {
			t.Fatalf("table %s missing after round trip", name)
		}
		if dst.Version().LSN() != wantLSN {
			t.Errorf("table %s LSN = %d, want %d", name, dst.Version().LSN(), wantLSN)
		}
		if !reflect.DeepEqual(dst.AllRows(), src.AllRows()) {
			t.Errorf("table %s rows differ after round trip", name)
		}
		if !reflect.DeepEqual(dst.Schema, src.Schema) {
			t.Errorf("table %s schema differs after round trip", name)
		}
	}
}

// ReadSnapshot rejects truncation anywhere in the stream.
func TestSnapshotTruncated(t *testing.T) {
	st := New(catalog.New())
	tbl, err := st.CreateTable(&catalog.Table{
		Name:    "t",
		Columns: []catalog.Column{{Name: "id", Type: types.Int}},
		Key:     []int{0},
	})
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tbl.InsertAll([]types.Row{{types.NewInt(1)}, {types.NewInt(2)}}); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st.Snapshot()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadSnapshot(full[:cut]); err == nil {
			t.Errorf("ReadSnapshot accepted a %d/%d-byte prefix", cut, len(full))
		}
	}
}
