package storage

import (
	"sync"
	"testing"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

func TestVersionPinning(t *testing.T) {
	tbl := newTestTable(t, 10)
	v := tbl.Version()
	if v.RowCount() != 10 {
		t.Fatalf("version rows = %d, want 10", v.RowCount())
	}
	if err := tbl.Insert(types.Row{types.NewInt(100), types.NewInt(0), types.NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if v.RowCount() != 10 {
		t.Errorf("pinned version grew to %d rows", v.RowCount())
	}
	if tbl.Version().RowCount() != 11 {
		t.Errorf("current version = %d rows, want 11", tbl.Version().RowCount())
	}
}

func TestSnapshotPinsAllTables(t *testing.T) {
	st := New(catalog.New())
	tbl, err := st.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(types.Row{types.NewInt(1), types.NewInt(0), types.NewFloat(0)})
	sn := st.Snapshot()

	tbl.Insert(types.Row{types.NewInt(2), types.NewInt(0), types.NewFloat(0)})
	other := &catalog.Table{Name: "after", Columns: []catalog.Column{{Name: "x", Type: types.Int}}, Key: []int{0}}
	if _, err := st.CreateTable(other); err != nil {
		t.Fatal(err)
	}

	v, ok := sn.Table("t")
	if !ok || v.RowCount() != 1 {
		t.Errorf("snapshot sees %d rows in t, want 1", v.RowCount())
	}
	if _, ok := sn.Table("after"); ok {
		t.Error("snapshot sees a table created after it was taken")
	}
	if got := tbl.Version().RowCount(); got != 2 {
		t.Errorf("live version = %d rows, want 2", got)
	}
}

func TestInsertAllAtomicPublication(t *testing.T) {
	// An invalid row anywhere in the batch publishes nothing.
	tbl := newTestTable(t, 5)
	batch := []types.Row{
		{types.NewInt(50), types.NewInt(0), types.NewFloat(0)},
		{types.NewString("bad"), types.NewInt(0), types.NewFloat(0)},
	}
	if err := tbl.InsertAll(batch); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got := tbl.Version().RowCount(); got != 5 {
		t.Errorf("failed batch published rows: %d, want 5", got)
	}
}

func TestIndexStalenessPreserved(t *testing.T) {
	// Rows inserted after BuildIndexes are visible to scans but not to
	// index lookups until the next BuildIndexes.
	tbl := newTestTable(t, 10)
	tbl.Insert(types.Row{types.NewInt(200), types.NewInt(3), types.NewFloat(0)})
	v := tbl.Version()
	if v.RowCount() != 11 {
		t.Fatalf("scan sees %d rows, want 11", v.RowCount())
	}
	if got := v.Lookup("t_pk", []types.Datum{types.NewInt(200)}); len(got) != 0 {
		t.Errorf("unindexed row visible to lookup: %v", got)
	}
	tbl.BuildIndexes()
	if got := tbl.Lookup("t_pk", []types.Datum{types.NewInt(200)}); len(got) != 1 {
		t.Errorf("after BuildIndexes lookup found %d rows, want 1", len(got))
	}
}

func TestConcurrentInsertAndSnapshot(t *testing.T) {
	// Batches publish all-or-nothing: every snapshot's row count is a
	// multiple of the batch size. Run with -race.
	st := New(catalog.New())
	tbl, err := st.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	const writers, batches, batchSize = 4, 25, 8
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := st.Snapshot()
			v, _ := sn.Table("t")
			if n := v.RowCount(); n%batchSize != 0 {
				t.Errorf("torn publication: snapshot sees %d rows (not a multiple of %d)", n, batchSize)
				return
			}
		}
	}()
	var writersWg sync.WaitGroup
	var next int64
	var idMu sync.Mutex
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func() {
			defer writersWg.Done()
			for b := 0; b < batches; b++ {
				idMu.Lock()
				base := next
				next += batchSize
				idMu.Unlock()
				rows := make([]types.Row, batchSize)
				for i := range rows {
					rows[i] = types.Row{types.NewInt(base + int64(i)), types.NewInt(0), types.NewFloat(0)}
				}
				if err := tbl.InsertAll(rows); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writersWg.Wait()
	close(stop)
	<-readerDone
	if got := tbl.Version().RowCount(); got != writers*batches*batchSize {
		t.Errorf("final rows = %d, want %d", got, writers*batches*batchSize)
	}
}
