// Package storage is the in-memory row store backing the engine. Each
// table holds its rows as []types.Row plus optional hash and ordered
// indexes declared in the catalog. The store is the engine's substrate:
// the execution engine scans and seeks through it, and the statistics
// module profiles it.
//
// Concurrency model (server mode): every table publishes an immutable
// Version — the row slice plus the index structures valid for it —
// through an atomic pointer. Readers load a Version once and see a
// frozen point-in-time state for as long as they hold it; writers
// (Insert, InsertAll, BuildIndexes) serialize on a per-table mutex,
// extend a private working slice, and publish a fresh Version in one
// atomic store. Published row prefixes share their backing array with
// the working slice — safe, because writers only ever append past the
// published length and never mutate published elements — so
// publication is O(1) and reads are lock-free. Store.Snapshot pins the
// current Version of every table, giving a transaction a consistent
// repeatable-read view of the whole database.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

// Version is one immutable published state of a table: a frozen row
// slice and the indexes built over (a prefix of) it. All methods are
// safe for concurrent use by any number of readers; nothing reachable
// from a Version is ever mutated after publication.
//
// Index staleness semantics are unchanged from the pre-versioned
// store: indexes cover the rows present at the last BuildIndexes, so
// rows inserted afterwards are visible to scans but not to index
// lookups until the next BuildIndexes (Analyze).
type Version struct {
	// Schema is the catalog schema of the table (immutable).
	Schema *catalog.Table

	id      uint64
	rows    []types.Row
	hashIdx map[string]*hashIndex // index name -> hash index
	ordIdx  map[string]*orderedIndex

	// lsn is the write-ahead-log sequence number of the journal record
	// whose application produced this version (0 when no journal is
	// attached). Because writers append to the journal and publish under
	// the same table lock, a table's publication order equals its LSN
	// order — which is what lets checkpoints record "this version
	// contains every record up to lsn" and recovery skip re-applying
	// them.
	lsn uint64
}

// versionIDs hands out process-unique identifiers for published
// versions. IDs are never reused, so (table name, version ID) pairs are
// exact equality tokens: two reads against the same ID are guaranteed
// to observe the same rows, and any write — however small — mints a
// fresh ID. The semantic result cache keys on these.
var versionIDs atomic.Uint64

// ID returns the version's process-unique identifier. A new ID is
// minted at every publication (insert batch, index rebuild, table
// creation), so equal IDs imply identical visible state.
func (v *Version) ID() uint64 { return v.id }

// LSN returns the journal sequence number of the record that produced
// this version (0 when the store has no journal attached).
func (v *Version) LSN() uint64 { return v.lsn }

type hashIndex struct {
	cols    []int
	rows    []types.Row // rows the index was built over
	buckets map[uint64][]int
}

type orderedIndex struct {
	cols []int
	rows []types.Row // rows the index was built over
	perm []int       // row ordinals sorted by cols
}

// AllRows exposes the version's rows. The slice and its elements are
// immutable; callers must not modify them.
func (v *Version) AllRows() []types.Row { return v.rows }

// RowCount returns the number of rows in this version.
func (v *Version) RowCount() int { return len(v.rows) }

// HasIndex reports whether an index with the name was built in this
// version.
func (v *Version) HasIndex(name string) bool {
	_, h := v.hashIdx[name]
	_, o := v.ordIdx[name]
	return h || o
}

// Lookup returns the ordinals of rows whose index columns equal the
// given key datums, using the named index. The index must exist (the
// optimizer only emits lookups against catalog indexes).
func (v *Version) Lookup(indexName string, key []types.Datum) []int {
	if hi, ok := v.hashIdx[indexName]; ok {
		probe := types.Row(key)
		kOrds := make([]int, len(key))
		for i := range kOrds {
			kOrds[i] = i
		}
		h := types.HashRow(probe, kOrds)
		var out []int
		for _, ord := range hi.buckets[h] {
			if types.EqualRows(hi.rows[ord], hi.cols, probe, kOrds) {
				out = append(out, ord)
			}
		}
		return out
	}
	if oi, ok := v.ordIdx[indexName]; ok {
		return oi.lookup(key)
	}
	return nil
}

// LookupOrds is Lookup under the execution engine's interface name.
func (v *Version) LookupOrds(index string, key []types.Datum) []int {
	return v.Lookup(index, key)
}

func (oi *orderedIndex) lookup(key []types.Datum) []int {
	cmpAt := func(i int) int {
		r := oi.rows[oi.perm[i]]
		for j, kd := range key {
			if c := types.Compare(r[oi.cols[j]], kd); c != 0 {
				return c
			}
		}
		return 0
	}
	lo := sort.Search(len(oi.perm), func(i int) bool { return cmpAt(i) >= 0 })
	var out []int
	for i := lo; i < len(oi.perm) && cmpAt(i) == 0; i++ {
		out = append(out, oi.perm[i])
	}
	return out
}

// OrderedScan returns the full permutation of row ordinals sorted by
// the named ordered index's columns (ascending), or false when the
// index is absent or stale. An index is stale when rows were inserted
// after the last BuildIndexes: those rows are visible to scans but not
// covered by the index, so walking the permutation would silently drop
// them. The returned slice is shared and immutable; callers must not
// modify it.
func (v *Version) OrderedScan(indexName string) ([]int, bool) {
	oi, ok := v.ordIdx[indexName]
	if !ok || len(oi.rows) != len(v.rows) {
		return nil, false
	}
	return oi.perm, true
}

// RangeScan returns row ordinals with lo <= indexCols < hi (nil bound =
// unbounded), via the named ordered index.
func (v *Version) RangeScan(indexName string, lo, hi []types.Datum) []int {
	oi, ok := v.ordIdx[indexName]
	if !ok {
		return nil
	}
	cmpKey := func(i int, key []types.Datum) int {
		r := oi.rows[oi.perm[i]]
		for j, kd := range key {
			if c := types.Compare(r[oi.cols[j]], kd); c != 0 {
				return c
			}
		}
		return 0
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(oi.perm), func(i int) bool { return cmpKey(i, lo) >= 0 })
	}
	end := len(oi.perm)
	if hi != nil {
		end = sort.Search(len(oi.perm), func(i int) bool { return cmpKey(i, hi) >= 0 })
	}
	out := make([]int, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, oi.perm[i])
	}
	return out
}

// Table is the stored form of one catalog table: a writer side (the
// working row slice, guarded by mu) and the atomically published
// current Version read by queries.
type Table struct {
	Schema *catalog.Table

	// Rows is the writer's working slice. It is exported for
	// single-threaded tooling and tests; concurrent readers must go
	// through Version()/AllRows() instead, which return the published
	// immutable state. Writers (Insert, InsertAll, BuildIndexes)
	// serialize on mu and republish after every mutation.
	Rows []types.Row

	// store points back at the owning Store, through which the table
	// reaches the attached journal (nil for tables of a store without
	// one).
	store *Store

	mu  sync.Mutex
	cur atomic.Pointer[Version]
}

func newTable(s *Store, schema *catalog.Table, lsn uint64) *Table {
	t := &Table{Schema: schema, store: s}
	t.cur.Store(&Version{Schema: schema, id: versionIDs.Add(1), lsn: lsn})
	return t
}

// journal returns the store's attached journal (nil when none).
func (t *Table) journal() Journal {
	if t.store == nil {
		return nil
	}
	return t.store.journal()
}

// Version returns the current published version of the table. The
// result is immutable: loading it once and using it for a whole query
// yields repeatable reads regardless of concurrent inserts.
func (t *Table) Version() *Version {
	return t.cur.Load()
}

// publish freezes the current working slice (plus the given indexes)
// as the new published version. Callers must hold t.mu. The published
// prefix aliases the working array — writers only append past the
// published length, so readers of the frozen prefix never observe a
// mutation.
func (t *Table) publish(hashIdx map[string]*hashIndex, ordIdx map[string]*orderedIndex, lsn uint64) {
	v := &Version{
		Schema:  t.Schema,
		id:      versionIDs.Add(1),
		rows:    t.Rows[:len(t.Rows):len(t.Rows)],
		hashIdx: hashIdx,
		ordIdx:  ordIdx,
		lsn:     lsn,
	}
	t.cur.Store(v)
}

// checkRow validates arity and types against the schema. NULLs are
// rejected in non-nullable columns.
func (t *Table) checkRow(row types.Row) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.Schema.Name, len(t.Schema.Columns), len(row))
	}
	for i, d := range row {
		col := t.Schema.Columns[i]
		if d.IsNull() {
			if !col.Nullable {
				return fmt.Errorf("storage: NULL in non-nullable column %s.%s", t.Schema.Name, col.Name)
			}
			continue
		}
		if d.Kind() != col.Type && !(d.Kind().Numeric() && col.Type.Numeric()) {
			return fmt.Errorf("storage: column %s.%s wants %s, got %s",
				t.Schema.Name, col.Name, col.Type, d.Kind())
		}
	}
	return nil
}

// Insert appends a row after validating arity and types, publishing
// the new state atomically.
func (t *Table) Insert(row types.Row) error {
	return t.InsertAll([]types.Row{row})
}

// InsertAll bulk-inserts rows, stopping before the first invalid row
// (all-or-nothing: a failed batch publishes no rows). The batch
// becomes visible to readers in a single publication — a concurrent
// snapshot sees either none or all of it.
func (t *Table) InsertAll(rows []types.Row) error {
	return t.InsertAllThen(rows, nil)
}

// InsertAllThen is InsertAll with a post-publish hook that runs while
// the writer lock is still held, so the hook's effects (e.g. the DB
// layer's stats-epoch bump) and the row publication form one atomic
// step with respect to other writers: no second writer can publish in
// between.
//
// With a journal attached, the batch is write-ahead logged — and the
// log write acknowledged per the journal's sync policy — before any
// in-memory state changes. A journal error aborts the insert with
// nothing published: the write was never acknowledged, so recovery
// owes it nothing.
func (t *Table) InsertAllThen(rows []types.Row, then func(total int)) error {
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := t.cur.Load()
	lsn := prev.lsn
	if j := t.journal(); j != nil {
		var err error
		if lsn, err = j.LogInsert(t.Schema.Name, rows); err != nil {
			return err
		}
	}
	t.Rows = append(t.Rows, rows...)
	t.publish(prev.hashIdx, prev.ordIdx, lsn)
	if then != nil {
		then(len(t.Rows))
	}
	return nil
}

// BuildIndexes (re)builds all indexes declared in the schema over the
// current rows and publishes the indexed version. Call after bulk
// load; loading then indexing is how the TPC-H generator populates the
// store.
func (t *Table) BuildIndexes() {
	t.mu.Lock()
	defer t.mu.Unlock()
	frozen := t.Rows[:len(t.Rows):len(t.Rows)]
	hashIdx := make(map[string]*hashIndex)
	ordIdx := make(map[string]*orderedIndex)
	for _, decl := range t.Schema.Indexes {
		if decl.Ordered {
			oi := &orderedIndex{cols: decl.Cols, rows: frozen}
			oi.perm = make([]int, len(frozen))
			for i := range oi.perm {
				oi.perm[i] = i
			}
			cols := decl.Cols
			sort.SliceStable(oi.perm, func(a, b int) bool {
				ra, rb := frozen[oi.perm[a]], frozen[oi.perm[b]]
				for _, c := range cols {
					if cmp := types.Compare(ra[c], rb[c]); cmp != 0 {
						return cmp < 0
					}
				}
				return false
			})
			ordIdx[decl.Name] = oi
		} else {
			hi := &hashIndex{cols: decl.Cols, rows: frozen, buckets: make(map[uint64][]int)}
			for i, r := range frozen {
				h := types.HashRow(r, decl.Cols)
				hi.buckets[h] = append(hi.buckets[h], i)
			}
			hashIdx[decl.Name] = hi
		}
	}
	t.publish(hashIdx, ordIdx, t.cur.Load().lsn)
}

// Lookup returns matching row ordinals via the current published
// version (see Version.Lookup).
func (t *Table) Lookup(indexName string, key []types.Datum) []int {
	return t.Version().Lookup(indexName, key)
}

// RangeScan returns row ordinals with lo <= indexCols < hi via the
// current published version.
func (t *Table) RangeScan(indexName string, lo, hi []types.Datum) []int {
	return t.Version().RangeScan(indexName, lo, hi)
}

// HasIndex reports whether an index with the name has been built.
func (t *Table) HasIndex(name string) bool { return t.Version().HasIndex(name) }

// AllRows exposes the currently published rows (immutable); it
// satisfies the execution engine's table access interface.
func (t *Table) AllRows() []types.Row { return t.Version().AllRows() }

// LookupOrds is Lookup under the execution engine's interface name.
func (t *Table) LookupOrds(index string, key []types.Datum) []int {
	return t.Lookup(index, key)
}

// Journal is the durability hook installed under the store: a
// write-ahead log that mutations append to — and wait on, per the
// journal's sync policy — before publishing. It is an interface (the
// implementation lives in internal/wal) so storage stays a leaf
// package; the orthoq layer wires the two together. Each Log method
// returns the sequence number assigned to the record, which the
// mutation stamps onto the Version it publishes.
type Journal interface {
	// LogCreateTable appends a table-creation record.
	LogCreateTable(schema *catalog.Table) (uint64, error)
	// LogInsert appends a row-batch record. The call returns only once
	// the record is acknowledged per the journal's sync policy.
	LogInsert(table string, rows []types.Row) (uint64, error)
}

// Store is a database instance: catalog plus stored tables. Table
// lookup is lock-free (the table map is copy-on-write); CreateTable
// serializes writers on an internal mutex.
type Store struct {
	Catalog *catalog.Catalog

	mu     sync.Mutex // serializes CreateTable
	tables atomic.Pointer[map[string]*Table]

	jnl atomic.Pointer[Journal]
}

// SetJournal attaches (or detaches, with nil) the store's journal.
// Attach after bootstrap/recovery so initial population is not logged;
// mutations from that point on are write-ahead logged.
func (s *Store) SetJournal(j Journal) {
	if j == nil {
		s.jnl.Store(nil)
		return
	}
	s.jnl.Store(&j)
}

// journal returns the attached journal (nil when none).
func (s *Store) journal() Journal {
	p := s.jnl.Load()
	if p == nil {
		return nil
	}
	return *p
}

// New creates an empty store over the catalog.
func New(cat *catalog.Catalog) *Store {
	s := &Store{Catalog: cat}
	m := make(map[string]*Table)
	s.tables.Store(&m)
	return s
}

// CreateTable registers schema in the catalog and allocates storage,
// publishing the extended table map atomically so concurrent readers
// never observe a torn map. With a journal attached the creation is
// write-ahead logged (after catalog validation, before publication).
func (s *Store) CreateTable(schema *catalog.Table) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.Catalog.Add(schema); err != nil {
		return nil, err
	}
	var lsn uint64
	if j := s.journal(); j != nil {
		var err error
		if lsn, err = j.LogCreateTable(schema); err != nil {
			// Roll back the registration: no Table was published and no
			// record was logged, so a catalog entry would be a phantom —
			// lookups miss it, yet a retry fails with "already exists".
			s.Catalog.Remove(schema.Name)
			return nil, err
		}
	}
	t := newTable(s, schema, lsn)
	old := *s.tables.Load()
	next := make(map[string]*Table, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[lower(schema.Name)] = t
	s.tables.Store(&next)
	return t, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// Table returns the stored table by name.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := (*s.tables.Load())[lower(name)]
	return t, ok
}

// Snapshot is a consistent point-in-time view of the whole store:
// the Version of every table as of the moment Snapshot() was called.
// Reads through a Snapshot are repeatable — concurrent inserts,
// index rebuilds, and even CreateTable are invisible to it. Snapshots
// are cheap (one pointer load per table, no copying) and need no
// release; dropping the reference frees them.
type Snapshot struct {
	versions map[string]*Version
}

// Snapshot pins the current version of every stored table.
func (s *Store) Snapshot() *Snapshot {
	tables := *s.tables.Load()
	sn := &Snapshot{versions: make(map[string]*Version, len(tables))}
	for name, t := range tables {
		sn.versions[name] = t.Version()
	}
	return sn
}

// Table returns the pinned version of the named table. Tables created
// after the snapshot was taken do not exist in it.
func (sn *Snapshot) Table(name string) (*Version, bool) {
	v, ok := sn.versions[lower(name)]
	return v, ok
}

// CheckpointSnapshot pins a checkpoint-consistent view: it acquires
// the store lock plus every table's writer lock, runs pin (the
// checkpointer reads the journal's next-LSN watermark and rotates the
// active segment there), and collects each table's current Version
// before releasing. Because mutations append their journal record and
// publish under the same table lock, no record with an LSN below the
// watermark can be missing from the returned snapshot — the watermark
// is an exact consistency point, so a successful checkpoint may delete
// every rotated-out segment. Writers stall only for the duration of
// the pin (the snapshot serialization itself happens after release).
func (s *Store) CheckpointSnapshot(pin func()) *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	tables := *s.tables.Load()
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic acquisition order
	for _, name := range names {
		tables[name].mu.Lock()
	}
	if pin != nil {
		pin()
	}
	sn := &Snapshot{versions: make(map[string]*Version, len(tables))}
	for _, name := range names {
		sn.versions[name] = tables[name].Version()
		tables[name].mu.Unlock()
	}
	return sn
}

// ApplyCreateTable re-applies a logged table creation during recovery.
// A table that already exists (it was captured by the checkpoint the
// replay starts from) is left untouched.
func (s *Store) ApplyCreateTable(schema *catalog.Table, lsn uint64) error {
	if _, ok := s.Table(schema.Name); ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.Catalog.Add(schema); err != nil {
		return err
	}
	t := newTable(s, schema, lsn)
	old := *s.tables.Load()
	next := make(map[string]*Table, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[lower(schema.Name)] = t
	s.tables.Store(&next)
	return nil
}

// ApplyInsert re-applies a logged row batch during recovery. Records
// at or below the table's checkpointed LSN are skipped (their rows are
// already in the snapshot); everything newer is appended and the
// version restamped. Rows are applied without re-validation — they
// passed checkRow when first logged.
func (s *Store) ApplyInsert(table string, rows []types.Row, lsn uint64) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("storage: replay insert into unknown table %q", table)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := t.cur.Load()
	if lsn <= prev.lsn {
		return nil
	}
	t.Rows = append(t.Rows, rows...)
	t.publish(prev.hashIdx, prev.ordIdx, lsn)
	return nil
}

// NewFromCatalog creates a store with (empty) table storage allocated
// for every table already registered in the catalog.
func NewFromCatalog(cat *catalog.Catalog) *Store {
	s := &Store{Catalog: cat}
	m := make(map[string]*Table)
	for _, t := range cat.Tables() {
		m[lower(t.Name)] = newTable(s, t, 0)
	}
	s.tables.Store(&m)
	return s
}
