// Package storage is the in-memory row store backing the engine. Each
// table holds its rows as []types.Row plus optional hash and ordered
// indexes declared in the catalog. The store is the engine's substrate:
// the execution engine scans and seeks through it, and the statistics
// module profiles it.
package storage

import (
	"fmt"
	"sort"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

// Table is the stored form of one catalog table.
type Table struct {
	Schema *catalog.Table
	Rows   []types.Row

	hashIdx map[string]*hashIndex // index name -> hash index
	ordIdx  map[string]*orderedIndex
}

type hashIndex struct {
	cols    []int
	buckets map[uint64][]int // hash -> row ordinals
}

type orderedIndex struct {
	cols []int
	perm []int // row ordinals sorted by cols
	rows *[]types.Row
}

// Store is a database instance: catalog plus stored tables.
type Store struct {
	Catalog *catalog.Catalog
	tables  map[string]*Table
}

// New creates an empty store over the catalog.
func New(cat *catalog.Catalog) *Store {
	return &Store{Catalog: cat, tables: make(map[string]*Table)}
}

// CreateTable registers schema in the catalog and allocates storage.
func (s *Store) CreateTable(schema *catalog.Table) (*Table, error) {
	if err := s.Catalog.Add(schema); err != nil {
		return nil, err
	}
	t := &Table{Schema: schema}
	s.tables[lower(schema.Name)] = t
	return t, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// Table returns the stored table by name.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[lower(name)]
	return t, ok
}

// Insert appends a row after validating arity and types. NULLs are
// rejected in non-nullable columns.
func (t *Table) Insert(row types.Row) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.Schema.Name, len(t.Schema.Columns), len(row))
	}
	for i, d := range row {
		col := t.Schema.Columns[i]
		if d.IsNull() {
			if !col.Nullable {
				return fmt.Errorf("storage: NULL in non-nullable column %s.%s", t.Schema.Name, col.Name)
			}
			continue
		}
		if d.Kind() != col.Type && !(d.Kind().Numeric() && col.Type.Numeric()) {
			return fmt.Errorf("storage: column %s.%s wants %s, got %s",
				t.Schema.Name, col.Name, col.Type, d.Kind())
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// InsertAll bulk-inserts rows, stopping at the first error.
func (t *Table) InsertAll(rows []types.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndexes (re)builds all indexes declared in the schema. Call after
// bulk load; loading then indexing is how the TPC-H generator populates
// the store.
func (t *Table) BuildIndexes() {
	t.hashIdx = make(map[string]*hashIndex)
	t.ordIdx = make(map[string]*orderedIndex)
	for _, decl := range t.Schema.Indexes {
		if decl.Ordered {
			oi := &orderedIndex{cols: decl.Cols, rows: &t.Rows}
			oi.perm = make([]int, len(t.Rows))
			for i := range oi.perm {
				oi.perm[i] = i
			}
			cols := decl.Cols
			sort.SliceStable(oi.perm, func(a, b int) bool {
				ra, rb := t.Rows[oi.perm[a]], t.Rows[oi.perm[b]]
				for _, c := range cols {
					if cmp := types.Compare(ra[c], rb[c]); cmp != 0 {
						return cmp < 0
					}
				}
				return false
			})
			t.ordIdx[decl.Name] = oi
		} else {
			hi := &hashIndex{cols: decl.Cols, buckets: make(map[uint64][]int)}
			for i, r := range t.Rows {
				h := types.HashRow(r, decl.Cols)
				hi.buckets[h] = append(hi.buckets[h], i)
			}
			t.hashIdx[decl.Name] = hi
		}
	}
}

// Lookup returns the ordinals of rows whose index columns equal the
// given key datums, using the named index. The index must exist (the
// optimizer only emits lookups against catalog indexes).
func (t *Table) Lookup(indexName string, key []types.Datum) []int {
	if hi, ok := t.hashIdx[indexName]; ok {
		probe := types.Row(key)
		kOrds := make([]int, len(key))
		for i := range kOrds {
			kOrds[i] = i
		}
		h := types.HashRow(probe, kOrds)
		var out []int
		for _, ord := range hi.buckets[h] {
			if types.EqualRows(t.Rows[ord], hi.cols, probe, kOrds) {
				out = append(out, ord)
			}
		}
		return out
	}
	if oi, ok := t.ordIdx[indexName]; ok {
		return oi.lookup(key)
	}
	return nil
}

func (oi *orderedIndex) lookup(key []types.Datum) []int {
	rows := *oi.rows
	cmpAt := func(i int) int {
		r := rows[oi.perm[i]]
		for j, kd := range key {
			if c := types.Compare(r[oi.cols[j]], kd); c != 0 {
				return c
			}
		}
		return 0
	}
	lo := sort.Search(len(oi.perm), func(i int) bool { return cmpAt(i) >= 0 })
	var out []int
	for i := lo; i < len(oi.perm) && cmpAt(i) == 0; i++ {
		out = append(out, oi.perm[i])
	}
	return out
}

// RangeScan returns row ordinals with lo <= indexCols < hi (nil bound =
// unbounded), via the named ordered index.
func (t *Table) RangeScan(indexName string, lo, hi []types.Datum) []int {
	oi, ok := t.ordIdx[indexName]
	if !ok {
		return nil
	}
	rows := *oi.rows
	cmpKey := func(i int, key []types.Datum) int {
		r := rows[oi.perm[i]]
		for j, kd := range key {
			if c := types.Compare(r[oi.cols[j]], kd); c != 0 {
				return c
			}
		}
		return 0
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(oi.perm), func(i int) bool { return cmpKey(i, lo) >= 0 })
	}
	end := len(oi.perm)
	if hi != nil {
		end = sort.Search(len(oi.perm), func(i int) bool { return cmpKey(i, hi) >= 0 })
	}
	out := make([]int, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, oi.perm[i])
	}
	return out
}

// HasIndex reports whether an index with the name has been built.
func (t *Table) HasIndex(name string) bool {
	_, h := t.hashIdx[name]
	_, o := t.ordIdx[name]
	return h || o
}

// AllRows exposes the stored rows (read-only by convention); it
// satisfies the execution engine's table access interface.
func (t *Table) AllRows() []types.Row { return t.Rows }

// LookupOrds is Lookup under the execution engine's interface name.
func (t *Table) LookupOrds(index string, key []types.Datum) []int {
	return t.Lookup(index, key)
}

// NewFromCatalog creates a store with (empty) table storage allocated
// for every table already registered in the catalog.
func NewFromCatalog(cat *catalog.Catalog) *Store {
	s := &Store{Catalog: cat, tables: make(map[string]*Table)}
	for _, t := range cat.Tables() {
		s.tables[lower(t.Name)] = &Table{Schema: t}
	}
	return s
}
