package storage

import (
	"math/rand"
	"testing"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

func testSchema() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: types.Int},
			{Name: "grp", Type: types.Int},
			{Name: "val", Type: types.Float, Nullable: true},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "t_pk", Cols: []int{0}, Unique: true, Ordered: true},
			{Name: "t_grp", Cols: []int{1}},
		},
	}
}

func newTestTable(t *testing.T, n int) *Table {
	t.Helper()
	st := New(catalog.New())
	tbl, err := st.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7)), types.NewFloat(float64(i) / 2)}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	tbl.BuildIndexes()
	return tbl
}

func TestInsertValidation(t *testing.T) {
	st := New(catalog.New())
	tbl, err := st.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(types.Row{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(types.Row{types.Null(types.Int), types.NewInt(0), types.NewFloat(0)}); err == nil {
		t.Error("NULL in non-nullable column accepted")
	}
	if err := tbl.Insert(types.Row{types.NewString("x"), types.NewInt(0), types.NewFloat(0)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tbl.Insert(types.Row{types.NewInt(1), types.NewInt(0), types.Null(types.Float)}); err != nil {
		t.Errorf("NULL in nullable column rejected: %v", err)
	}
}

func TestDuplicateTable(t *testing.T) {
	st := New(catalog.New())
	if _, err := st.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateTable(testSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, ok := st.Table("T"); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

func TestHashIndexLookup(t *testing.T) {
	tbl := newTestTable(t, 70)
	got := tbl.Lookup("t_grp", []types.Datum{types.NewInt(3)})
	if len(got) != 10 {
		t.Fatalf("grp=3 lookup: got %d rows, want 10", len(got))
	}
	for _, ord := range got {
		if tbl.Rows[ord][1].Int() != 3 {
			t.Errorf("row %d has grp %v", ord, tbl.Rows[ord][1])
		}
	}
	if got := tbl.Lookup("t_grp", []types.Datum{types.NewInt(99)}); len(got) != 0 {
		t.Errorf("missing key returned %d rows", len(got))
	}
}

func TestOrderedIndexLookupAndRange(t *testing.T) {
	tbl := newTestTable(t, 100)
	got := tbl.Lookup("t_pk", []types.Datum{types.NewInt(42)})
	if len(got) != 1 || tbl.Rows[got[0]][0].Int() != 42 {
		t.Fatalf("pk lookup: got %v", got)
	}
	rng := tbl.RangeScan("t_pk", []types.Datum{types.NewInt(10)}, []types.Datum{types.NewInt(15)})
	if len(rng) != 5 {
		t.Fatalf("range [10,15): got %d rows", len(rng))
	}
	for i, ord := range rng {
		if want := int64(10 + i); tbl.Rows[ord][0].Int() != want {
			t.Errorf("range order: got %v want %d", tbl.Rows[ord][0], want)
		}
	}
	if all := tbl.RangeScan("t_pk", nil, nil); len(all) != 100 {
		t.Errorf("unbounded range: got %d", len(all))
	}
}

func TestLookupMatchesLinearScan(t *testing.T) {
	// Property-style test with random data: index lookups agree with a
	// linear scan filter.
	st := New(catalog.New())
	tbl, err := st.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tbl.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(r.Intn(20))), types.NewFloat(r.Float64())})
	}
	tbl.BuildIndexes()
	for k := int64(0); k < 25; k++ {
		want := 0
		for _, row := range tbl.Rows {
			if row[1].Int() == k {
				want++
			}
		}
		got := tbl.Lookup("t_grp", []types.Datum{types.NewInt(k)})
		if len(got) != want {
			t.Errorf("key %d: lookup %d rows, scan %d", k, len(got), want)
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	c := catalog.New()
	bad := &catalog.Table{Name: "b", Columns: []catalog.Column{{Name: "x", Type: types.Int}}}
	if err := c.Add(bad); err == nil {
		t.Error("table without key accepted")
	}
	bad2 := &catalog.Table{Name: "b2", Columns: []catalog.Column{{Name: "x", Type: types.Int}}, Key: []int{5}}
	if err := c.Add(bad2); err == nil {
		t.Error("out-of-range key accepted")
	}
	bad3 := &catalog.Table{Name: "b3", Columns: []catalog.Column{
		{Name: "x", Type: types.Int}, {Name: "X", Type: types.Int}}, Key: []int{0}}
	if err := c.Add(bad3); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestIndexOn(t *testing.T) {
	sch := testSchema()
	if idx := sch.IndexOn([]int{0}); idx == nil || idx.Name != "t_pk" {
		t.Errorf("IndexOn([0]) = %v", idx)
	}
	if idx := sch.IndexOn([]int{1}); idx == nil || idx.Name != "t_grp" {
		t.Errorf("IndexOn([1]) = %v", idx)
	}
	if idx := sch.IndexOn([]int{2}); idx != nil {
		t.Errorf("IndexOn([2]) = %v, want nil", idx)
	}
}
