package tpch

import (
	"fmt"
	"math/rand"

	"orthoq/internal/sql/types"
	"orthoq/internal/storage"
)

// Generation follows the shape of TPC-H dbgen at reduced scale:
// the same table ratios, key structures, and value distributions that
// the paper's queries are sensitive to (brands, containers, dates,
// per-part lineitem counts), generated deterministically from a seed.
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	baseOrders   = 1_500_000
)

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	containers = crossJoinWords(
		[]string{"SM", "LG", "MED", "JUMBO", "WRAP"},
		[]string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"})
	typeSyl1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	partNouns = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse"}
)

func crossJoinWords(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			out = append(out, x+" "+y)
		}
	}
	return out
}

// epochDay converts a date string to day count, panicking on bad input
// (all inputs are compile-time constants).
func epochDay(s string) int64 { return types.MustDate(s).Days() }

var (
	startDate = epochDay("1992-01-01")
	endDate   = epochDay("1998-08-02")
)

// Generate builds a populated, indexed store at the given scale
// factor. The same (sf, seed) pair always produces identical data.
func Generate(sf float64, seed int64) (*storage.Store, error) {
	rnd := rand.New(rand.NewSource(seed))
	st := storage.NewFromCatalog(Schema())

	nSupp := scaled(baseSupplier, sf)
	nCust := scaled(baseCustomer, sf)
	nPart := scaled(basePart, sf)
	nOrd := scaled(baseOrders, sf)

	if err := loadRegionNation(st); err != nil {
		return nil, err
	}
	if err := loadSuppliers(st, rnd, nSupp); err != nil {
		return nil, err
	}
	if err := loadCustomers(st, rnd, nCust); err != nil {
		return nil, err
	}
	partPrice, err := loadParts(st, rnd, nPart)
	if err != nil {
		return nil, err
	}
	if err := loadPartSupp(st, rnd, nPart, nSupp); err != nil {
		return nil, err
	}
	if err := loadOrdersAndLineitems(st, rnd, nOrd, nCust, nPart, nSupp, partPrice); err != nil {
		return nil, err
	}
	for _, schema := range st.Catalog.Tables() {
		tbl, _ := st.Table(schema.Name)
		tbl.BuildIndexes()
	}
	return st, nil
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 8 {
		n = 8
	}
	return n
}

func loadRegionNation(st *storage.Store) error {
	rt, _ := st.Table("region")
	for i, name := range regions {
		if err := rt.Insert(types.Row{
			types.NewInt(int64(i)), types.NewString(name), types.NewString("region " + name),
		}); err != nil {
			return err
		}
	}
	nt, _ := st.Table("nation")
	for i, name := range nations {
		if err := nt.Insert(types.Row{
			types.NewInt(int64(i)), types.NewString(name),
			types.NewInt(int64(i % len(regions))), types.NewString("nation " + name),
		}); err != nil {
			return err
		}
	}
	return nil
}

func loadSuppliers(st *storage.Store, rnd *rand.Rand, n int) error {
	t, _ := st.Table("supplier")
	for i := 1; i <= n; i++ {
		if err := t.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i)),
			types.NewString(randText(rnd, 12)),
			types.NewInt(int64(rnd.Intn(len(nations)))),
			types.NewString(randPhone(rnd)),
			types.NewFloat(float64(rnd.Intn(1100000)-100000) / 100),
			types.NewString(randText(rnd, 20)),
		}); err != nil {
			return err
		}
	}
	return nil
}

func loadCustomers(st *storage.Store, rnd *rand.Rand, n int) error {
	t, _ := st.Table("customer")
	for i := 1; i <= n; i++ {
		if err := t.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%09d", i)),
			types.NewString(randText(rnd, 12)),
			types.NewInt(int64(rnd.Intn(len(nations)))),
			types.NewString(randPhone(rnd)),
			types.NewFloat(float64(rnd.Intn(1100000)-100000) / 100),
			types.NewString(segments[rnd.Intn(len(segments))]),
			types.NewString(randText(rnd, 20)),
		}); err != nil {
			return err
		}
	}
	return nil
}

func loadParts(st *storage.Store, rnd *rand.Rand, n int) ([]float64, error) {
	t, _ := st.Table("part")
	prices := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		price := float64(90000+((i/10)%20001)+100*(i%1000)) / 100
		prices[i] = price
		name := partNouns[rnd.Intn(len(partNouns))] + " " + partNouns[rnd.Intn(len(partNouns))]
		ptype := typeSyl1[rnd.Intn(len(typeSyl1))] + " " +
			typeSyl2[rnd.Intn(len(typeSyl2))] + " " + typeSyl3[rnd.Intn(len(typeSyl3))]
		if err := t.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", 1+rnd.Intn(5))),
			types.NewString(fmt.Sprintf("Brand#%d%d", 1+rnd.Intn(5), 1+rnd.Intn(5))),
			types.NewString(ptype),
			types.NewInt(int64(1 + rnd.Intn(50))),
			types.NewString(containers[rnd.Intn(len(containers))]),
			types.NewFloat(price),
			types.NewString(randText(rnd, 10)),
		}); err != nil {
			return nil, err
		}
	}
	return prices, nil
}

func loadPartSupp(st *storage.Store, rnd *rand.Rand, nPart, nSupp int) error {
	t, _ := st.Table("partsupp")
	for p := 1; p <= nPart; p++ {
		for k := 0; k < 4; k++ {
			s := 1 + (p+k*(nSupp/4+1))%nSupp
			if err := t.Insert(types.Row{
				types.NewInt(int64(p)),
				types.NewInt(int64(s)),
				types.NewInt(int64(1 + rnd.Intn(9999))),
				types.NewFloat(float64(100+rnd.Intn(99900)) / 100),
				types.NewString(randText(rnd, 15)),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadOrdersAndLineitems(st *storage.Store, rnd *rand.Rand,
	nOrd, nCust, nPart, nSupp int, partPrice []float64) error {
	ot, _ := st.Table("orders")
	lt, _ := st.Table("lineitem")
	dateRange := endDate - startDate - 200
	for o := 1; o <= nOrd; o++ {
		// Customer keys divisible by 3 receive no orders, mirroring
		// dbgen's sparse custkey population (one third of customers
		// have no orders).
		cust := 1 + rnd.Intn(nCust)
		if cust%3 == 0 {
			cust++
			if cust > nCust {
				cust = 1
			}
		}
		odate := startDate + int64(rnd.Intn(int(dateRange)))
		nLines := 1 + rnd.Intn(7)
		total := 0.0
		for l := 1; l <= nLines; l++ {
			part := 1 + rnd.Intn(nPart)
			supp := 1 + rnd.Intn(nSupp)
			qty := float64(1 + rnd.Intn(50))
			ext := qty * partPrice[part]
			total += ext
			ship := odate + int64(1+rnd.Intn(120))
			commit := odate + int64(30+rnd.Intn(90))
			receipt := ship + int64(1+rnd.Intn(30))
			if err := lt.Insert(types.Row{
				types.NewInt(int64(o)),
				types.NewInt(int64(part)),
				types.NewInt(int64(supp)),
				types.NewInt(int64(l)),
				types.NewFloat(qty),
				types.NewFloat(ext),
				types.NewFloat(float64(rnd.Intn(11)) / 100),
				types.NewFloat(float64(rnd.Intn(9)) / 100),
				types.NewString([]string{"R", "A", "N"}[rnd.Intn(3)]),
				types.NewString([]string{"O", "F"}[rnd.Intn(2)]),
				types.NewDate(ship),
				types.NewDate(commit),
				types.NewDate(receipt),
				types.NewString(instructs[rnd.Intn(len(instructs))]),
				types.NewString(shipModes[rnd.Intn(len(shipModes))]),
				types.NewString(randText(rnd, 10)),
			}); err != nil {
				return err
			}
		}
		status := "F"
		if rnd.Intn(2) == 0 {
			status = "O"
		}
		if err := ot.Insert(types.Row{
			types.NewInt(int64(o)),
			types.NewInt(int64(cust)),
			types.NewString(status),
			types.NewFloat(total),
			types.NewDate(odate),
			types.NewString(priorities[rnd.Intn(len(priorities))]),
			types.NewString(fmt.Sprintf("Clerk#%09d", 1+rnd.Intn(1000))),
			types.NewInt(0),
			types.NewString(randText(rnd, 12)),
		}); err != nil {
			return err
		}
	}
	return nil
}

const letters = "abcdefghijklmnopqrstuvwxyz "

func randText(rnd *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rnd.Intn(len(letters))]
	}
	return string(b)
}

func randPhone(rnd *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d",
		10+rnd.Intn(25), rnd.Intn(1000), rnd.Intn(1000), rnd.Intn(10000))
}
