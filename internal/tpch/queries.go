package tpch

// Query texts for the benchmark. These are the TPC-H queries the
// paper's techniques apply to, adapted to the engine's SQL subset
// (interval arithmetic is pre-folded into date literals; Q2's ORDER BY
// is kept). The paper's evaluation (§5) highlights Q2 and Q17.
var Queries = map[string]string{
	// Q1: pricing summary report (pure aggregation; exercises GroupBy
	// and LocalGroupBy machinery, no subqueries).
	"Q1": `
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-09-01'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`,

	// Q2: minimum cost supplier — the paper's first headline query: a
	// correlated scalar min() subquery over a four-table join.
	"Q2": `
select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone
from part, supplier, partsupp, nation, region
where p_partkey = ps_partkey
  and s_suppkey = ps_suppkey
  and p_size = 15
  and p_type like '%BRASS'
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'EUROPE'
  and ps_supplycost = (
        select min(ps_supplycost)
        from partsupp, supplier, nation, region
        where p_partkey = ps_partkey
          and s_suppkey = ps_suppkey
          and s_nationkey = n_nationkey
          and n_regionkey = r_regionkey
          and r_name = 'EUROPE')
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100`,

	// Q4: order priority checking (EXISTS subquery -> semijoin).
	"Q4": `
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '1993-07-01'
  and o_orderdate < date '1993-07-01' + interval '3' month
  and exists (
        select l_orderkey from lineitem
        where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority`,

	// Q6: forecasting revenue change (single-table scan with a
	// selective range predicate feeding a scalar aggregate; the
	// canonical batch-execution stress test — no joins, no
	// subqueries).
	"Q6": `
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1994-01-01' + interval '12' month
  and l_discount >= 0.05 and l_discount <= 0.07
  and l_quantity < 24`,

	// Q11: important stock identification (HAVING compared against an
	// uncorrelated scalar subquery over the same join — class 1,
	// flattens into a cross join with a scalar aggregate).
	"Q11": `
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from partsupp, supplier, nation
where ps_suppkey = s_suppkey
  and s_nationkey = n_nationkey
  and n_name = 'GERMANY'
group by ps_partkey
having sum(ps_supplycost * ps_availqty) > (
        select sum(ps_supplycost * ps_availqty) * 0.001
        from partsupp, supplier, nation
        where ps_suppkey = s_suppkey
          and s_nationkey = n_nationkey
          and n_name = 'GERMANY')
order by value desc
limit 100`,

	// Q15: top supplier — a WITH view referenced twice, once under an
	// uncorrelated scalar max() subquery (common-subexpression
	// flattening).
	"Q15": `
with revenue (supplier_no, total_revenue) as (
        select l_suppkey, sum(l_extendedprice * (1 - l_discount))
        from lineitem
        where l_shipdate >= date '1996-01-01'
          and l_shipdate < date '1996-01-01' + interval '3' month
        group by l_suppkey)
select s_suppkey, s_name, s_address, s_phone, total_revenue
from supplier, revenue
where s_suppkey = supplier_no
  and total_revenue = (
        select max(total_revenue) from revenue)
order by s_suppkey`,

	// Q16: parts/supplier relationship (NOT IN subquery).
	"Q16": `
select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
from partsupp, part
where p_partkey = ps_partkey
  and p_brand <> 'Brand#45'
  and p_type not like 'MEDIUM POLISHED%'
  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
  and ps_suppkey not in (
        select s_suppkey from supplier
        where s_comment like '%Customer%Complaints%')
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand, p_type, p_size`,

	// Q17: small-quantity-order revenue — the paper's second headline
	// query: correlated avg() subquery against the same table
	// (SegmentApply territory, §3.4).
	"Q17": `
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey
  and p_brand = 'Brand#23'
  and p_container = 'MED BOX'
  and l_quantity < (
        select 0.2 * avg(l_quantity)
        from lineitem
        where l_partkey = p_partkey)`,

	// Q18: large volume customer (IN over an aggregated subquery).
	"Q18": `
select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) as total_qty
from customer, orders, lineitem
where o_orderkey in (
        select l_orderkey
        from (select l_orderkey, sum(l_quantity) as q
              from lineitem group by l_orderkey) as big
        where q > 250)
  and c_custkey = o_custkey
  and o_orderkey = l_orderkey
group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
order by o_totalprice desc, o_orderdate
limit 100`,

	// Q20: potential part promotion (nested IN + correlated scalar
	// aggregate; two levels of subquery).
	"Q20": `
select s_name, s_address
from supplier, nation
where s_suppkey in (
        select ps_suppkey
        from partsupp
        where ps_partkey in (
                select p_partkey from part where p_name like 'a%')
          and ps_availqty > (
                select 0.5 * sum(l_quantity)
                from lineitem
                where l_partkey = ps_partkey
                  and l_suppkey = ps_suppkey
                  and l_shipdate >= date '1994-01-01'
                  and l_shipdate < date '1994-01-01' + interval '1' year))
  and s_nationkey = n_nationkey
  and n_name = 'CANADA'
order by s_name`,

	// Q21: suppliers who kept orders waiting (EXISTS + NOT EXISTS over
	// the same table — multiple correlated existential subqueries).
	"Q21": `
select s_name, count(*) as numwait
from supplier, lineitem l1, orders, nation
where s_suppkey = l1.l_suppkey
  and o_orderkey = l1.l_orderkey
  and o_orderstatus = 'F'
  and l1.l_receiptdate > l1.l_commitdate
  and exists (
        select l2.l_orderkey from lineitem l2
        where l2.l_orderkey = l1.l_orderkey
          and l2.l_suppkey <> l1.l_suppkey)
  and not exists (
        select l3.l_orderkey from lineitem l3
        where l3.l_orderkey = l1.l_orderkey
          and l3.l_suppkey <> l1.l_suppkey
          and l3.l_receiptdate > l3.l_commitdate)
  and s_nationkey = n_nationkey
  and n_name = 'SAUDI ARABIA'
group by s_name
order by numwait desc, s_name
limit 100`,

	// Q22: global sales opportunity (NOT EXISTS + uncorrelated scalar
	// subquery over customers).
	"Q22": `
select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal
from (select c_nationkey % 10 as cntrycode, c_acctbal, c_custkey
      from customer
      where c_acctbal > (
            select avg(c_acctbal) from customer
            where c_acctbal > 0.00)) as cust
where not exists (
        select o_orderkey from orders where o_custkey = c_custkey)
group by cntrycode
order by cntrycode`,
}

// PaperQueries lists the queries the paper's §5 reports on.
var PaperQueries = []string{"Q2", "Q17"}
