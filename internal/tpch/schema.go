// Package tpch provides the TPC-H substrate used by the paper's
// evaluation (§5): the eight-table schema, a deterministic scaled-down
// data generator in the spirit of dbgen, and the benchmark query texts
// relevant to the paper.
package tpch

import (
	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
)

// Schema returns the TPC-H catalog. Columns keep their standard names;
// every table declares its primary key, plus the secondary indexes
// TPC-H implementations conventionally build on foreign keys (the
// paper notes TPC-H "has strict rules on what indices are allowed" —
// FK indexes are allowed and are what correlated index-lookup plans
// need).
func Schema() *catalog.Catalog {
	c := catalog.New()
	mustAdd := func(t *catalog.Table) {
		if err := c.Add(t); err != nil {
			panic(err)
		}
	}

	mustAdd(&catalog.Table{
		Name: "region",
		Columns: []catalog.Column{
			{Name: "r_regionkey", Type: types.Int},
			{Name: "r_name", Type: types.String},
			{Name: "r_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "region_pk", Cols: []int{0}, Unique: true, Ordered: true},
		},
	})

	mustAdd(&catalog.Table{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_nationkey", Type: types.Int},
			{Name: "n_name", Type: types.String},
			{Name: "n_regionkey", Type: types.Int},
			{Name: "n_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "nation_pk", Cols: []int{0}, Unique: true, Ordered: true},
			{Name: "nation_rk", Cols: []int{2}},
		},
	})

	mustAdd(&catalog.Table{
		Name: "supplier",
		Columns: []catalog.Column{
			{Name: "s_suppkey", Type: types.Int},
			{Name: "s_name", Type: types.String},
			{Name: "s_address", Type: types.String},
			{Name: "s_nationkey", Type: types.Int},
			{Name: "s_phone", Type: types.String},
			{Name: "s_acctbal", Type: types.Float},
			{Name: "s_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "supplier_pk", Cols: []int{0}, Unique: true, Ordered: true},
			{Name: "supplier_nk", Cols: []int{3}},
		},
	})

	mustAdd(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: types.Int},
			{Name: "c_name", Type: types.String},
			{Name: "c_address", Type: types.String},
			{Name: "c_nationkey", Type: types.Int},
			{Name: "c_phone", Type: types.String},
			{Name: "c_acctbal", Type: types.Float},
			{Name: "c_mktsegment", Type: types.String},
			{Name: "c_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "customer_pk", Cols: []int{0}, Unique: true, Ordered: true},
			{Name: "customer_nk", Cols: []int{3}},
		},
	})

	mustAdd(&catalog.Table{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: types.Int},
			{Name: "p_name", Type: types.String},
			{Name: "p_mfgr", Type: types.String},
			{Name: "p_brand", Type: types.String},
			{Name: "p_type", Type: types.String},
			{Name: "p_size", Type: types.Int},
			{Name: "p_container", Type: types.String},
			{Name: "p_retailprice", Type: types.Float},
			{Name: "p_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "part_pk", Cols: []int{0}, Unique: true, Ordered: true},
		},
	})

	mustAdd(&catalog.Table{
		Name: "partsupp",
		Columns: []catalog.Column{
			{Name: "ps_partkey", Type: types.Int},
			{Name: "ps_suppkey", Type: types.Int},
			{Name: "ps_availqty", Type: types.Int},
			{Name: "ps_supplycost", Type: types.Float},
			{Name: "ps_comment", Type: types.String},
		},
		Key: []int{0, 1},
		Indexes: []catalog.Index{
			{Name: "partsupp_pk", Cols: []int{0, 1}, Unique: true, Ordered: true},
			{Name: "partsupp_sk", Cols: []int{1}},
		},
	})

	mustAdd(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.Int},
			{Name: "o_custkey", Type: types.Int},
			{Name: "o_orderstatus", Type: types.String},
			{Name: "o_totalprice", Type: types.Float},
			{Name: "o_orderdate", Type: types.Date},
			{Name: "o_orderpriority", Type: types.String},
			{Name: "o_clerk", Type: types.String},
			{Name: "o_shippriority", Type: types.Int},
			{Name: "o_comment", Type: types.String},
		},
		Key: []int{0},
		Indexes: []catalog.Index{
			{Name: "orders_pk", Cols: []int{0}, Unique: true, Ordered: true},
			{Name: "orders_ck", Cols: []int{1}},
		},
	})

	mustAdd(&catalog.Table{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: types.Int},
			{Name: "l_partkey", Type: types.Int},
			{Name: "l_suppkey", Type: types.Int},
			{Name: "l_linenumber", Type: types.Int},
			{Name: "l_quantity", Type: types.Float},
			{Name: "l_extendedprice", Type: types.Float},
			{Name: "l_discount", Type: types.Float},
			{Name: "l_tax", Type: types.Float},
			{Name: "l_returnflag", Type: types.String},
			{Name: "l_linestatus", Type: types.String},
			{Name: "l_shipdate", Type: types.Date},
			{Name: "l_commitdate", Type: types.Date},
			{Name: "l_receiptdate", Type: types.Date},
			{Name: "l_shipinstruct", Type: types.String},
			{Name: "l_shipmode", Type: types.String},
			{Name: "l_comment", Type: types.String},
		},
		Key: []int{0, 3},
		Indexes: []catalog.Index{
			{Name: "lineitem_pk", Cols: []int{0, 3}, Unique: true, Ordered: true},
			{Name: "lineitem_ok", Cols: []int{0}},
			{Name: "lineitem_pk2", Cols: []int{1}},
			{Name: "lineitem_sk", Cols: []int{2}},
		},
	})

	return c
}
