package tpch

import (
	"testing"

	"orthoq/internal/sql/parser"
)

func TestSchemaComplete(t *testing.T) {
	c := Schema()
	want := []string{"region", "nation", "supplier", "customer", "part",
		"partsupp", "orders", "lineitem"}
	for _, name := range want {
		tbl, ok := c.Table(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		if len(tbl.Key) == 0 {
			t.Errorf("%s has no key", name)
		}
		if len(tbl.Indexes) == 0 {
			t.Errorf("%s has no indexes", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem", "part"} {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if len(ta.Rows) != len(tb.Rows) {
			t.Fatalf("%s: %d vs %d rows", name, len(ta.Rows), len(tb.Rows))
		}
		for i := range ta.Rows {
			for j := range ta.Rows[i] {
				if ta.Rows[i][j].String() != tb.Rows[i][j].String() {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
	// Different seeds differ.
	c, _ := Generate(0.001, 43)
	ta, _ := a.Table("lineitem")
	tc, _ := c.Table("lineitem")
	same := len(ta.Rows) == len(tc.Rows)
	if same {
		diff := false
		for i := range ta.Rows {
			if ta.Rows[i][4].String() != tc.Rows[i][4].String() {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical lineitems")
		}
	}
}

func TestGenerateRatios(t *testing.T) {
	st, err := Generate(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(n string) int {
		tbl, _ := st.Table(n)
		return len(tbl.Rows)
	}
	if rows("region") != 5 || rows("nation") != 25 {
		t.Errorf("region/nation = %d/%d", rows("region"), rows("nation"))
	}
	if rows("customer") != 300 {
		t.Errorf("customer = %d, want 300", rows("customer"))
	}
	if rows("orders") != 3000 {
		t.Errorf("orders = %d, want 3000", rows("orders"))
	}
	li := rows("lineitem")
	if li < 3000*1 || li > 3000*7 {
		t.Errorf("lineitem = %d, outside [3000, 21000]", li)
	}
	if rows("partsupp") != 4*rows("part") {
		t.Errorf("partsupp = %d, want 4x part (%d)", rows("partsupp"), rows("part"))
	}
	// Referential integrity spot checks.
	ot, _ := st.Table("orders")
	nCust := int64(rows("customer"))
	for _, r := range ot.Rows {
		ck := r[1].Int()
		if ck < 1 || ck > nCust {
			t.Fatalf("order with bad custkey %d", ck)
		}
	}
	// One third of customers should have no orders.
	hasOrder := map[int64]bool{}
	for _, r := range ot.Rows {
		hasOrder[r[1].Int()] = true
	}
	orphans := 0
	for i := int64(1); i <= nCust; i++ {
		if !hasOrder[i] {
			orphans++
		}
	}
	if orphans < int(nCust)/5 || orphans > int(nCust)/2 {
		t.Errorf("customers without orders = %d of %d, want about a third", orphans, nCust)
	}
}

func TestQueriesParse(t *testing.T) {
	for name, sql := range Queries {
		if _, err := parser.Parse(sql); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
	if len(Queries) < 8 {
		t.Errorf("expected at least 8 benchmark queries, have %d", len(Queries))
	}
}
