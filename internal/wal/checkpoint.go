// Checkpointing: serialize the store's published version set, land it
// atomically, truncate the log behind it.
//
// Protocol (crash-safe at every step):
//
//  1. Pin. Store.CheckpointSnapshot acquires every table's writer
//     lock, then (inside the pin) the log rotates: the active segment
//     is fsynced and closed, a fresh segment is created, and the
//     checkpoint LSN is fixed at nextLSN-1. Because mutations append
//     their record and publish under the same table lock, the pinned
//     versions contain exactly the records up to that LSN — the
//     rotated-out segments are fully covered by the snapshot.
//  2. Serialize the snapshot (schemas + per-table LSN + rows, CRC
//     trailer) to CHECKPOINT.tmp, fsync it.
//  3. Atomically rename CHECKPOINT.tmp → CHECKPOINT, fsync the
//     directory. This rename is the commit point: a crash before it
//     leaves the previous checkpoint + full log (recovery replays); a
//     crash after it finds the new checkpoint.
//  4. Delete the rotated-out segments, fsync the directory. A crash
//     between 3 and 4 leaves stale segments whose records are all at
//     or below the checkpoint LSN — replay skips them by LSN.
//
// Checkpoints run on the background checkpointer goroutine when the
// un-checkpointed log exceeds Options.CheckpointBytes, and on demand
// via DB.Checkpoint / graceful shutdown.
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"orthoq/internal/storage"
)

// Checkpoint file layout: magic, checkpoint LSN, snapshot body
// (storage.WriteSnapshot), CRC32 trailer over everything before it.
const (
	ckptMagic = "OQCKPT01"
	ckptName  = "CHECKPOINT"
	ckptTmp   = "CHECKPOINT.tmp"
)

// Checkpoint serializes the current version set and truncates the log
// behind it. Serialization happens after the pin is released, so
// writers stall only for the fsync-and-rotate, not for the disk write
// of the snapshot. Any I/O error poisons the manager (fail-stop).
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	var (
		ckptLSN uint64
		oldSegs []string
		pinErr  error
	)
	sn := m.store.CheckpointSnapshot(func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		ckptLSN, oldSegs, pinErr = m.rotateLocked()
	})
	if pinErr != nil {
		return pinErr
	}

	var body bytes.Buffer
	body.WriteString(ckptMagic)
	var lsnBuf [8]byte
	binary.BigEndian.PutUint64(lsnBuf[:], ckptLSN)
	body.Write(lsnBuf[:])
	if err := storage.WriteSnapshot(&body, sn); err != nil {
		return m.failCheckpoint(err)
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body.Bytes()))
	body.Write(crcBuf[:])

	tmp := filepath.Join(m.dir, ckptTmp)
	f, err := m.fs.Create(tmp)
	if err != nil {
		return m.failCheckpoint(err)
	}
	if _, err := f.Write(body.Bytes()); err != nil {
		f.Close()
		return m.failCheckpoint(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return m.failCheckpoint(err)
	}
	f.Close()
	if err := m.fs.Rename(tmp, filepath.Join(m.dir, ckptName)); err != nil {
		return m.failCheckpoint(err)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return m.failCheckpoint(err)
	}

	// Commit point passed: the rotated-out segments are now redundant.
	for _, seg := range oldSegs {
		if err := m.fs.Remove(seg); err != nil {
			return m.failCheckpoint(err)
		}
		m.met.SegmentsDeleted.Add(1)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return m.failCheckpoint(err)
	}
	m.met.Checkpoints.Add(1)
	m.met.CheckpointBytes.Add(uint64(body.Len()))
	return nil
}

// failCheckpoint poisons the manager with a checkpoint I/O error.
func (m *Manager) failCheckpoint(err error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fail(fmt.Errorf("wal: checkpoint: %w", err))
}

// rotateLocked fixes the checkpoint LSN, makes the active segment
// fully durable (acknowledging any group-commit waiters), and swaps in
// a fresh segment. Returns the rotated-out segment paths. Callers must
// hold m.mu; the store's table locks are held by the enclosing pin.
func (m *Manager) rotateLocked() (uint64, []string, error) {
	if m.err != nil {
		return 0, nil, m.err
	}
	ckptLSN := m.nextLSN - 1
	if err := m.flushLocked(true); err != nil {
		return 0, nil, err
	}
	seg := filepath.Join(m.dir, segName(m.nextLSN))
	if active := m.segs[len(m.segs)-1]; seg == active {
		// Nothing was appended since the active segment was created
		// (e.g. two back-to-back checkpoints), so the rotation would
		// recreate it under the same name — Create would truncate the
		// live segment and the post-commit delete would unlink it.
		// Keep it active; rotate out only the older segments, which
		// the checkpoint fully covers.
		old := m.segs[:len(m.segs)-1]
		m.segs = []string{active}
		m.logBytes = 0
		return ckptLSN, old, nil
	}
	if m.f != nil {
		m.f.Close()
	}
	f, err := m.fs.Create(seg)
	if err != nil {
		return 0, nil, m.fail(err)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		return 0, nil, m.fail(err)
	}
	old := m.segs
	m.f = f
	m.segs = []string{seg}
	m.logBytes = 0
	return ckptLSN, old, nil
}
