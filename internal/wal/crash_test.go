// The crash matrix: every fault point a real disk exposes — crash
// mid-append, mid-fsync, mid-checkpoint-rename, a torn tail, a
// corrupted record — driven deterministically through FaultFS, with
// the same invariant asserted each time: after Reboot+Open, every
// acknowledged write is present, no unacknowledged batch is partially
// visible, and damage the log cannot explain fails loudly.
package wal

import (
	"strings"
	"sync"
	"testing"
	"time"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
	"orthoq/internal/storage"
)

const testDir = "/data"

func testSchema(name string) *catalog.Table {
	return &catalog.Table{
		Name: name,
		Columns: []catalog.Column{
			{Name: "id", Type: types.Int},
			{Name: "batch", Type: types.Int},
		},
		Key: []int{0},
	}
}

func intRow(id, batch int64) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(batch)}
}

// openFF opens the log over ffs and wires the journal, failing the
// test on error.
func openFF(t *testing.T, ffs *FaultFS, policy SyncPolicy) (*Manager, *storage.Store, *RecoveryInfo) {
	t.Helper()
	m, st, info, err := Open(Options{Dir: testDir, Policy: policy, Interval: 500 * time.Microsecond, FS: ffs})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	st.SetJournal(m)
	return m, st, info
}

func mustCreate(t *testing.T, st *storage.Store, name string) *storage.Table {
	t.Helper()
	tbl, err := st.CreateTable(testSchema(name))
	if err != nil {
		t.Fatalf("CreateTable(%s): %v", name, err)
	}
	return tbl
}

// batchRows builds one batch of n rows tagged with the batch id.
func batchRows(batch int64, n int) []types.Row {
	rows := make([]types.Row, n)
	for k := range rows {
		rows[k] = intRow(batch*100+int64(k), batch)
	}
	return rows
}

// batchCounts maps batch id -> visible row count in table name.
func batchCounts(t *testing.T, st *storage.Store, name string) map[int64]int {
	t.Helper()
	counts := make(map[int64]int)
	tbl, ok := st.Table(name)
	if !ok {
		return counts
	}
	for _, row := range tbl.AllRows() {
		counts[row[1].Int()]++
	}
	return counts
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != SyncInterval {
		t.Errorf("ParsePolicy(\"\") = %v, %v", p, err)
	}
	for _, s := range []string{"always", "interval", "off"} {
		if p, err := ParsePolicy(s); err != nil || string(p) != s {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePolicy("fsync-maybe"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

// A graceful Close makes everything durable; the next Open replays the
// full log (no checkpoint was taken at this layer).
func TestRecoverAfterClose(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncInterval)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, st2, info := openFF(t, ffs.Reboot(), SyncInterval)
	if info.CheckpointLSN != 0 {
		t.Errorf("unexpected checkpoint LSN %d", info.CheckpointLSN)
	}
	if info.ReplayedRecords != 2 { // create + insert
		t.Errorf("ReplayedRecords = %d, want 2", info.ReplayedRecords)
	}
	if got := batchCounts(t, st2, "t"); got[1] != 3 {
		t.Errorf("batch 1 has %d rows after recovery, want 3", got[1])
	}
}

// Appends after Close fail with ErrClosed.
func TestAppendAfterClose(t *testing.T) {
	m, st, _ := openFF(t, NewFaultFS(nil), SyncAlways)
	mustCreate(t, st, "t")
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.LogEpoch(); err != ErrClosed {
		t.Errorf("append after Close: err = %v, want ErrClosed", err)
	}
}

// SyncOff acknowledges without fsync: a crash loses the unsynced
// suffix entirely — no partial state, just a clean rollback.
func TestSyncOffCrashLosesUnsynced(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncOff)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	ffs.Crash()
	m.Kill()

	_, st2, info := openFF(t, ffs.Reboot(), SyncOff)
	if info.ReplayedRecords != 0 {
		t.Errorf("ReplayedRecords = %d, want 0 (nothing was synced)", info.ReplayedRecords)
	}
	if _, ok := st2.Table("t"); ok {
		t.Error("table survived a crash that predates every fsync")
	}
}

// Sync() is the manual durability barrier for SyncOff: batches before
// the barrier survive a crash, batches after it are lost.
func TestSyncOffManualBarrier(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncOff)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := m.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	ffs.Crash()
	m.Kill()

	_, st2, _ := openFF(t, ffs.Reboot(), SyncOff)
	counts := batchCounts(t, st2, "t")
	if counts[1] != 3 {
		t.Errorf("pre-barrier batch has %d rows, want 3", counts[1])
	}
	if counts[2] != 0 {
		t.Errorf("post-barrier batch partially visible: %d rows", counts[2])
	}
}

// SyncAlways: every acknowledged batch survives any crash.
func TestSyncAlwaysAckedSurviveCrash(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	for b := int64(1); b <= 5; b++ {
		if err := tbl.InsertAll(batchRows(b, 3)); err != nil {
			t.Fatalf("InsertAll batch %d: %v", b, err)
		}
	}
	ffs.Crash()
	m.Kill()

	_, st2, _ := openFF(t, ffs.Reboot(), SyncAlways)
	counts := batchCounts(t, st2, "t")
	for b := int64(1); b <= 5; b++ {
		if counts[b] != 3 {
			t.Errorf("acked batch %d has %d rows after recovery, want 3", b, counts[b])
		}
	}
}

// A torn write mid-append: the frame is half on disk when the machine
// dies. Recovery truncates the torn tail; the unacknowledged batch is
// completely invisible, everything acknowledged before it intact.
func TestTornTailTruncated(t *testing.T) {
	inj := &Injector{}
	// Writes so far: 1 = create record, 2 = batch 1. The 3rd log write
	// (batch 2) tears after 5 bytes — inside the frame header.
	inj.Arm(Rule{Op: OpWrite, Path: "wal-", After: 2, Kind: KindTorn, KeepBytes: 5})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err == nil {
		t.Fatal("torn write did not surface an error")
	}
	m.Kill()

	_, st2, info := openFF(t, ffs.Reboot(), SyncAlways)
	if !info.TornTailTruncated {
		t.Error("TornTailTruncated not reported")
	}
	counts := batchCounts(t, st2, "t")
	if counts[1] != 3 {
		t.Errorf("acked batch 1 has %d rows, want 3", counts[1])
	}
	if counts[2] != 0 {
		t.Errorf("torn batch 2 partially visible: %d rows", counts[2])
	}
}

// Bit rot in the final record reads as a torn tail: the record's CRC
// fails, it is truncated away, and everything before it survives.
func TestCorruptCRCTailTruncated(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	ffs.Crash()
	m.Kill()

	ffs2 := ffs.Reboot()
	corruptLastByte(t, ffs2, lastSegment(t, ffs2))

	_, st2, info := openFF(t, ffs2, SyncAlways)
	if !info.TornTailTruncated {
		t.Error("CRC-failing tail record not truncated")
	}
	counts := batchCounts(t, st2, "t")
	if counts[1] != 3 || counts[2] != 0 {
		t.Errorf("batch counts after CRC truncation = %v, want {1:3}", counts)
	}
}

// The same damage mid-log — with acknowledged records after it — is a
// disk integrity failure, not a crash artifact. Open must refuse.
func TestMidLogCorruptionFatal(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Second epoch appends to a second segment, so the first segment is
	// no longer "the last" and gets no torn-tail tolerance.
	m2, st2, _ := openFF(t, ffs, SyncAlways)
	tbl2, _ := st2.Table("t")
	if err := tbl2.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll epoch 2: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close epoch 2: %v", err)
	}

	ffs2 := ffs.Reboot()
	corruptLastByte(t, ffs2, firstSegment(t, ffs2))
	_, _, _, err := Open(Options{Dir: testDir, Policy: SyncAlways, FS: ffs2})
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-log corruption: err = %v, want corrupt-record failure", err)
	}
}

// Crash between append and fsync (SyncAlways): the batch was never
// acknowledged, so losing it is correct — and the error reaches the
// writer before the rows reach memory.
func TestCrashMidFsync(t *testing.T) {
	inj := &Injector{}
	// Syncs: 1 = create, 2 = batch 1. The 3rd fsync (batch 2) crashes
	// before taking effect.
	inj.Arm(Rule{Op: OpSync, Path: "wal-", After: 2, Kind: KindCrash})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err == nil {
		t.Fatal("crash mid-fsync did not surface an error")
	}
	// Fail-stop: the store never published the failed batch even in
	// memory.
	if got := batchCounts(t, st, "t"); got[2] != 0 {
		t.Errorf("failed batch visible in memory: %d rows", got[2])
	}
	m.Kill()

	_, st2, _ := openFF(t, ffs.Reboot(), SyncAlways)
	counts := batchCounts(t, st2, "t")
	if counts[1] != 3 || counts[2] != 0 {
		t.Errorf("batch counts after mid-fsync crash = %v, want {1:3}", counts)
	}
}

// An injected I/O error (machine alive) poisons the manager: the
// failed append and every later one return the sticky error, while
// reads keep serving from memory.
func TestWriteErrorFailStop(t *testing.T) {
	inj := &Injector{}
	inj.Arm(Rule{Op: OpWrite, Path: "wal-", After: 2, Kind: KindError})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	if err := tbl.InsertAll(batchRows(3, 3)); err == nil {
		t.Fatal("manager not poisoned after I/O error")
	}
	if got := batchCounts(t, st, "t"); got[1] != 3 || got[2] != 0 || got[3] != 0 {
		t.Errorf("in-memory reads after fail-stop = %v, want {1:3}", got)
	}
	m.Kill()
}

// Crash before the checkpoint's commit rename: the previous state (no
// checkpoint, full log) recovers everything.
func TestCrashMidCheckpointRename(t *testing.T) {
	inj := &Injector{}
	inj.Arm(Rule{Op: OpRename, Path: "CHECKPOINT", Kind: KindCrash})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint survived a crash on its commit rename")
	}
	m.Kill()

	_, st2, info := openFF(t, ffs.Reboot(), SyncAlways)
	if info.CheckpointLSN != 0 {
		t.Errorf("CheckpointLSN = %d, want 0 (rename never committed)", info.CheckpointLSN)
	}
	if got := batchCounts(t, st2, "t"); got[1] != 3 {
		t.Errorf("batch 1 has %d rows, want 3", got[1])
	}
}

// Crash after the commit rename but before the old segments are
// deleted: the checkpoint wins, the stale segments replay as no-ops
// (their LSNs are at or below each table's checkpointed LSN), and no
// row appears twice.
func TestCrashAfterCheckpointBeforeSegmentDelete(t *testing.T) {
	inj := &Injector{}
	inj.Arm(Rule{Op: OpRemove, Path: "wal-", Kind: KindCrash})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint survived a crash on segment delete")
	}
	m.Kill()

	_, st2, info := openFF(t, ffs.Reboot(), SyncAlways)
	if info.CheckpointLSN == 0 {
		t.Error("committed checkpoint not loaded")
	}
	if got := batchCounts(t, st2, "t"); got[1] != 3 {
		t.Errorf("batch 1 has %d rows (stale-segment replay must be idempotent), want 3", got[1])
	}
}

// A clean checkpoint splits recovery: the snapshot carries the old
// records, replay covers only the tail.
func TestCheckpointThenReplayTail(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	ffs.Crash()
	m.Kill()

	_, st2, info := openFF(t, ffs.Reboot(), SyncAlways)
	if info.CheckpointLSN == 0 {
		t.Error("checkpoint not loaded")
	}
	if info.ReplayedRecords != 1 {
		t.Errorf("ReplayedRecords = %d, want 1 (only the post-checkpoint insert)", info.ReplayedRecords)
	}
	counts := batchCounts(t, st2, "t")
	if counts[1] != 3 || counts[2] != 3 {
		t.Errorf("batch counts = %v, want {1:3, 2:3}", counts)
	}
}

// A stray CHECKPOINT.tmp (crash between serialize and rename) is
// removed at Open and recovery proceeds from the log.
func TestStrayCheckpointTmpRemoved(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ffs2 := ffs.Reboot()
	f, err := ffs2.Create(testDir + "/CHECKPOINT.tmp")
	if err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	f.Write([]byte("half a checkpoint"))
	f.Sync()
	f.Close()
	if err := ffs2.SyncDir(testDir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}

	_, st2, _ := openFF(t, ffs2, SyncAlways)
	if got := batchCounts(t, st2, "t"); got[1] != 3 {
		t.Errorf("batch 1 has %d rows, want 3", got[1])
	}
	names, _ := ffs2.ReadDir(testDir)
	for _, n := range names {
		if n == "CHECKPOINT.tmp" {
			t.Error("stray CHECKPOINT.tmp survived Open")
		}
	}
}

// A corrupted committed checkpoint is fatal: it was fsynced before its
// rename, so damage means the disk lost synced data.
func TestCorruptCheckpointFatal(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ffs2 := ffs.Reboot()
	corruptLastByte(t, ffs2, testDir+"/CHECKPOINT")
	_, _, _, err := Open(Options{Dir: testDir, Policy: SyncAlways, FS: ffs2})
	if err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("corrupt checkpoint: err = %v, want corrupt-checkpoint failure", err)
	}
}

// The group-commit invariant under concurrency and a crash at an
// arbitrary fsync: every batch whose InsertAll returned nil is fully
// present after recovery; every other batch is all-or-nothing. Run
// with -race: writers, flusher, checkpointer, and the crash overlap.
func TestGroupCommitCrashConcurrent(t *testing.T) {
	inj := &Injector{}
	// Let a few group commits land, then die on a later segment fsync.
	inj.Arm(Rule{Op: OpSync, Path: "wal-", After: 6, Kind: KindCrash})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncInterval)
	tbl := mustCreate(t, st, "t")

	const writers = 4
	var mu sync.Mutex
	acked := make(map[int64]bool)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				batch := g*1000 + i
				if err := tbl.InsertAll(batchRows(batch, 3)); err != nil {
					return // poisoned: the crash happened
				}
				mu.Lock()
				acked[batch] = true
				mu.Unlock()
			}
		}(int64(g))
	}
	wg.Wait()
	m.Kill()

	_, st2, _ := openFF(t, ffs.Reboot(), SyncInterval)
	counts := batchCounts(t, st2, "t")
	for batch := range acked {
		if counts[batch] != 3 {
			t.Errorf("acked batch %d has %d rows after recovery, want 3", batch, counts[batch])
		}
	}
	for batch, n := range counts {
		if n != 3 {
			t.Errorf("batch %d partially visible: %d rows", batch, n)
		}
		_ = batch
	}
	if len(acked) == 0 {
		t.Error("crash fired before any batch was acknowledged; rule placement is wrong")
	}
}

// The size trigger runs a background checkpoint without any caller
// asking for one.
func TestCheckpointBytesTrigger(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _, err := Open(Options{Dir: testDir, Policy: SyncOff, CheckpointBytes: 256, FS: ffs})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	st.SetJournal(m)
	tbl := mustCreate(t, st, "t")
	deadline := time.Now().Add(5 * time.Second)
	for b := int64(1); m.met.Checkpoints.Load() == 0; b++ {
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint within 5s despite exceeding CheckpointBytes")
		}
		if err := tbl.InsertAll(batchRows(b, 8)); err != nil {
			t.Fatalf("InsertAll: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, st2, info := openFF(t, ffs.Reboot(), SyncOff)
	if info.CheckpointLSN == 0 {
		t.Error("background checkpoint not found by recovery")
	}
	want := batchCounts(t, st, "t")
	got := batchCounts(t, st2, "t")
	for b, n := range want {
		if got[b] != n {
			t.Errorf("batch %d: recovered %d rows, want %d", b, got[b], n)
		}
	}
}

// Epoch records replay as no-ops and keep LSNs monotonic across them.
func TestEpochRecordReplay(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	lsn1, err := m.LogEpoch()
	if err != nil {
		t.Fatalf("LogEpoch: %v", err)
	}
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	lsn2, err := m.LogEpoch()
	if err != nil {
		t.Fatalf("LogEpoch: %v", err)
	}
	if lsn2 <= lsn1 {
		t.Errorf("LSNs not monotonic: %d then %d", lsn1, lsn2)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, st2, info := openFF(t, ffs.Reboot(), SyncAlways)
	if info.ReplayedRecords != 4 { // epoch, create, insert, epoch
		t.Errorf("ReplayedRecords = %d, want 4", info.ReplayedRecords)
	}
	if got := batchCounts(t, st2, "t"); got[1] != 3 {
		t.Errorf("batch 1 has %d rows, want 3", got[1])
	}
}

// Back-to-back checkpoints with no appends in between: the rotation
// would recreate the active segment under its own name, so the
// post-commit delete must not unlink the live segment. Writes
// acknowledged after the second checkpoint have to survive a crash,
// and a third checkpoint has to succeed (no ENOENT poison).
func TestBackToBackCheckpointsKeepActiveSegment(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 2 (no intervening appends): %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 3 after back-to-back pair: %v", err)
	}
	if err := tbl.InsertAll(batchRows(3, 3)); err != nil {
		t.Fatalf("InsertAll batch 3: %v", err)
	}
	ffs.Crash()
	m.Kill()

	_, st2, _ := openFF(t, ffs.Reboot(), SyncAlways)
	counts := batchCounts(t, st2, "t")
	for b := int64(1); b <= 3; b++ {
		if counts[b] != 3 {
			t.Errorf("acked batch %d has %d rows after recovery, want 3", b, counts[b])
		}
	}
}

// A CRC flip in the MIDDLE of the final segment — with valid, synced
// records after it — is disk corruption, not a torn tail. Truncating
// there would silently discard acknowledged data; Open must refuse.
func TestMidSegmentCorruptionFinalSegmentFatal(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := tbl.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ffs2 := ffs.Reboot()
	// Flip a payload byte of the FIRST record (offset 8 is the LSN's
	// high byte, past the length+CRC header): its CRC fails while the
	// records after it stay valid.
	corruptByte(t, ffs2, lastSegment(t, ffs2), frameHeader)
	_, _, _, err := Open(Options{Dir: testDir, Policy: SyncAlways, FS: ffs2})
	if err == nil || !strings.Contains(err.Error(), "valid records after it") {
		t.Fatalf("mid-segment corruption: err = %v, want valid-records-after failure", err)
	}
}

// A crash right after a checkpoint leaves a committed checkpoint plus a
// record-free rotated segment whose name recovery's fresh active
// segment reuses. Recovery must not track the path twice: the next
// checkpoint has to succeed instead of poisoning on a double Remove.
func TestRecoverEmptySegmentNameCollision(t *testing.T) {
	ffs := NewFaultFS(nil)
	m, st, _ := openFF(t, ffs, SyncAlways)
	tbl := mustCreate(t, st, "t")
	if err := tbl.InsertAll(batchRows(1, 3)); err != nil {
		t.Fatalf("InsertAll batch 1: %v", err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ffs.Crash()
	m.Kill()

	ffs2 := ffs.Reboot()
	m2, st2, info := openFF(t, ffs2, SyncAlways)
	if info.CheckpointLSN == 0 {
		t.Fatal("committed checkpoint not loaded")
	}
	tbl2, ok := st2.Table("t")
	if !ok {
		t.Fatal("table missing after recovery")
	}
	if err := tbl2.InsertAll(batchRows(2, 3)); err != nil {
		t.Fatalf("InsertAll batch 2: %v", err)
	}
	if err := m2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after empty-segment recovery: %v", err)
	}
	if err := tbl2.InsertAll(batchRows(3, 3)); err != nil {
		t.Fatalf("InsertAll batch 3: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, st3, _ := openFF(t, ffs2.Reboot(), SyncAlways)
	counts := batchCounts(t, st3, "t")
	for b := int64(1); b <= 3; b++ {
		if counts[b] != 3 {
			t.Errorf("batch %d has %d rows after second recovery, want 3", b, counts[b])
		}
	}
}

// A failed journal append during CreateTable rolls the catalog entry
// back: no phantom table that lookups miss but re-creation trips over.
func TestCreateTableJournalFailureRollsBackCatalog(t *testing.T) {
	inj := &Injector{}
	inj.Arm(Rule{Op: OpWrite, Path: "wal-", Kind: KindError})
	ffs := NewFaultFS(inj)
	m, st, _ := openFF(t, ffs, SyncAlways)
	if _, err := st.CreateTable(testSchema("t")); err == nil {
		t.Fatal("CreateTable with failing journal append succeeded")
	}
	if _, ok := st.Catalog.Table("t"); ok {
		t.Error("catalog kept a phantom entry for the unlogged table")
	}
	if _, ok := st.Table("t"); ok {
		t.Error("table published despite failed journal append")
	}
	m.Kill()
}

// lastSegment returns the path of the newest non-empty log segment.
func lastSegment(t *testing.T, ffs *FaultFS) string {
	t.Helper()
	return pickSegment(t, ffs, true)
}

// firstSegment returns the path of the oldest non-empty log segment.
func firstSegment(t *testing.T, ffs *FaultFS) string {
	t.Helper()
	return pickSegment(t, ffs, false)
}

func pickSegment(t *testing.T, ffs *FaultFS, last bool) string {
	t.Helper()
	names, err := ffs.ReadDir(testDir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var segs []string
	for _, n := range names { // ReadDir sorts; hex names sort by LSN
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".log") {
			if data, err := ffs.ReadFile(testDir + "/" + n); err == nil && len(data) > 0 {
				segs = append(segs, testDir+"/"+n)
			}
		}
	}
	if len(segs) == 0 {
		t.Fatal("no non-empty log segment found")
	}
	if last {
		return segs[len(segs)-1]
	}
	return segs[0]
}

// corruptLastByte flips the final byte of path in place (through the
// FS interface, so the change is durable).
func corruptLastByte(t *testing.T, ffs *FaultFS, path string) {
	t.Helper()
	corruptByte(t, ffs, path, -1)
}

// corruptByte flips the byte at idx of path in place (idx -1 = the
// final byte), through the FS interface so the change is durable.
func corruptByte(t *testing.T, ffs *FaultFS, path string, idx int) {
	t.Helper()
	data, err := ffs.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("ReadFile(%s): %v (len %d)", path, err, len(data))
	}
	if idx < 0 {
		idx = len(data) - 1
	}
	data[idx] ^= 0xff
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Close()
	if err := ffs.SyncDir(testDir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}
