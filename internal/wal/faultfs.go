// FaultFS: the deterministic disk fault-injection seam, mirroring
// exec/faultinject's discipline (exact rules, fire-once, no
// randomness). It is a fully in-memory filesystem that models the two
// ways real disks lose data on a crash:
//
//   - written bytes are volatile until File.Sync — a crash discards
//     every unsynced suffix;
//   - directory entries (create, rename, remove) are volatile until
//     SyncDir — a crash rolls the namespace back to its last synced
//     state.
//
// A crash (injected or explicit) kills the "machine": every subsequent
// operation fails with ErrCrashed. Reboot() then constructs the
// post-crash filesystem — exactly what a real disk would hold — for
// recovery to open. Tests drive the crash matrix by planting one Rule
// at a chosen I/O point and asserting the recovered state.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation after a crash.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the default error of a KindError rule.
var ErrInjected = errors.New("wal: injected I/O error")

// Op names one FaultFS operation class for rule matching.
type Op string

// Operation classes.
const (
	OpCreate   Op = "create"
	OpAppend   Op = "append"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
)

// Kind is what an armed rule does when it fires.
type Kind int

// Rule kinds.
const (
	// KindError fails the operation with Err (machine stays alive).
	KindError Kind = iota
	// KindCrash kills the machine before the operation takes effect.
	KindCrash
	// KindTorn (writes only) persists the first KeepBytes of the write
	// as if synced, then kills the machine — the torn-record case.
	KindTorn
)

// Rule is one deterministic fault: it fires on the (After+1)-th
// operation matching Op and Path (substring, "" = any), then disarms.
type Rule struct {
	Op        Op
	Path      string
	After     int
	Kind      Kind
	Err       error
	KeepBytes int
}

// Injector holds armed rules. Matching is counted per rule, so a test
// can express "crash on the 3rd fsync of the log segment" exactly.
type Injector struct {
	mu    sync.Mutex
	rules []*ruleState
}

type ruleState struct {
	Rule
	seen  int
	fired bool
}

// Arm adds a rule.
func (in *Injector) Arm(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{Rule: r})
}

// match returns the rule firing on this operation, if any.
func (in *Injector) match(op Op, path string) *Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.fired || rs.Op != op {
			continue
		}
		if rs.Path != "" && !strings.Contains(path, rs.Path) {
			continue
		}
		if rs.seen < rs.After {
			rs.seen++
			continue
		}
		rs.fired = true
		r := rs.Rule
		return &r
	}
	return nil
}

type faultFile struct {
	data   []byte
	synced int // durable prefix length
}

// FaultFS is the in-memory crash-faithful FS. See the package comment
// above for the durability model.
type FaultFS struct {
	mu      sync.Mutex
	live    map[string]*faultFile // current namespace
	durable map[string]*faultFile // namespace as of the last SyncDir
	dead    bool
	inj     *Injector
}

// NewFaultFS creates an empty FaultFS with the given injector (nil for
// none).
func NewFaultFS(inj *Injector) *FaultFS {
	return &FaultFS{
		live:    make(map[string]*faultFile),
		durable: make(map[string]*faultFile),
		inj:     inj,
	}
}

// Crash kills the machine: every subsequent operation fails.
func (fs *FaultFS) Crash() {
	fs.mu.Lock()
	fs.dead = true
	fs.mu.Unlock()
}

// Reboot returns the filesystem a restart would find: the last synced
// namespace, each file truncated to its synced prefix. The new FS is
// alive with no injector (recovery is not re-faulted unless the test
// arms it).
func (fs *FaultFS) Reboot() *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	next := NewFaultFS(nil)
	for path, f := range fs.durable {
		data := make([]byte, f.synced)
		copy(data, f.data[:f.synced])
		nf := &faultFile{data: data, synced: f.synced}
		next.live[path] = nf
		next.durable[path] = nf
	}
	return next
}

// SetInjector arms an injector on a (typically rebooted) FS.
func (fs *FaultFS) SetInjector(inj *Injector) {
	fs.mu.Lock()
	fs.inj = inj
	fs.mu.Unlock()
}

// check applies the dead state and any firing rule for op on path. It
// must be called with fs.mu held; a KindTorn rule is returned to the
// caller (only Write handles it).
func (fs *FaultFS) check(op Op, path string) (*Rule, error) {
	if fs.dead {
		return nil, ErrCrashed
	}
	r := fs.inj.match(op, path)
	if r == nil {
		return nil, nil
	}
	switch r.Kind {
	case KindError:
		if r.Err != nil {
			return nil, r.Err
		}
		return nil, ErrInjected
	case KindCrash:
		fs.dead = true
		return nil, ErrCrashed
	default: // KindTorn
		return r, nil
	}
}

// MkdirAll implements FS (the namespace is flat; only liveness is
// checked).
func (fs *FaultFS) MkdirAll(string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return ErrCrashed
	}
	return nil
}

// Create implements FS.
func (fs *FaultFS) Create(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpCreate, path); err != nil {
		return nil, err
	}
	f := &faultFile{}
	fs.live[path] = f
	return &faultHandle{fs: fs, path: path, f: f}, nil
}

// OpenAppend implements FS.
func (fs *FaultFS) OpenAppend(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpAppend, path); err != nil {
		return nil, err
	}
	f, ok := fs.live[path]
	if !ok {
		f = &faultFile{}
		fs.live[path] = f
	}
	return &faultHandle{fs: fs, path: path, f: f}, nil
}

// ReadFile implements FS.
func (fs *FaultFS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return nil, ErrCrashed
	}
	f, ok := fs.live[path]
	if !ok {
		return nil, fmt.Errorf("wal: %s: %w", path, errNotExist)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// ReadDir implements FS: every live path under dir.
func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return nil, ErrCrashed
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range fs.live {
		if strings.HasPrefix(path, prefix) {
			names = append(names, strings.TrimPrefix(path, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS. The rename is immediately visible but durable
// only after SyncDir.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpRename, newpath); err != nil {
		return err
	}
	f, ok := fs.live[oldpath]
	if !ok {
		return fmt.Errorf("wal: %s: %w", oldpath, errNotExist)
	}
	delete(fs.live, oldpath)
	fs.live[newpath] = f
	return nil
}

// Remove implements FS (durable after SyncDir).
func (fs *FaultFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpRemove, path); err != nil {
		return err
	}
	if _, ok := fs.live[path]; !ok {
		return fmt.Errorf("wal: %s: %w", path, errNotExist)
	}
	delete(fs.live, path)
	return nil
}

// Truncate implements FS. Truncation is treated as durable (recovery
// truncates a torn tail and must not see it again after a re-crash).
func (fs *FaultFS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpTruncate, path); err != nil {
		return err
	}
	f, ok := fs.live[path]
	if !ok {
		return fmt.Errorf("wal: %s: %w", path, errNotExist)
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

// SyncDir implements FS: the current namespace under dir becomes the
// durable one.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.check(OpSyncDir, dir); err != nil {
		return err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for path := range fs.durable {
		if strings.HasPrefix(path, prefix) {
			if _, ok := fs.live[path]; !ok {
				delete(fs.durable, path)
			}
		}
	}
	for path, f := range fs.live {
		if strings.HasPrefix(path, prefix) {
			fs.durable[path] = f
		}
	}
	return nil
}

var errNotExist = errors.New("file does not exist")

type faultHandle struct {
	fs   *FaultFS
	path string
	f    *faultFile
}

// Write appends p; the bytes stay volatile until Sync. A KindTorn rule
// persists a prefix of p as synced, then crashes.
func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	r, err := h.fs.check(OpWrite, h.path)
	if err != nil {
		return 0, err
	}
	if r != nil { // torn write
		keep := r.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		h.f.data = append(h.f.data, p[:keep]...)
		h.f.synced = len(h.f.data)
		h.fs.dead = true
		return keep, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync makes all written data durable.
func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.check(OpSync, h.path); err != nil {
		return err
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File (no-op; durability comes from Sync alone).
func (h *faultHandle) Close() error { return nil }
