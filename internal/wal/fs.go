// Package wal is the durability subsystem: a write-ahead log with
// CRC-checksummed, length-prefixed, monotonically sequenced records; a
// checkpointer that serializes the store's published version set and
// truncates the log behind it; and crash recovery that reloads the
// latest checkpoint and replays the log tail. The package implements
// storage.Journal — the store calls back into it on every mutation —
// and is wired under a store by the orthoq layer, so storage itself
// stays a leaf package.
//
// All disk access goes through the FS seam below, mirroring the
// deterministic fault-injection discipline of exec/faultinject: tests
// swap in FaultFS to crash the "machine" at exact I/O points and prove
// recovery, rather than hoping for it.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the WAL writes through. The production
// implementation is OSFS; crash tests use FaultFS, which models the
// page cache (writes are volatile until Sync) and injectable failures.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create creates (or truncates) the file for writing.
	Create(path string) (File, error)
	// OpenAppend opens the file for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the sorted names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file.
	Remove(path string) error
	// Truncate cuts the file to size bytes.
	Truncate(path string, size int64) error
	// SyncDir makes directory-entry operations (create, rename, remove)
	// in dir durable.
	SyncDir(dir string) error
}

// File is the writable-file seam.
type File interface {
	io.Writer
	// Sync makes all written data durable.
	Sync() error
	// Close releases the file (without syncing).
	Close() error
}

// OSFS is the real-filesystem implementation of FS.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS. Directory fsync is what makes renames and
// segment creations crash-durable on POSIX filesystems.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
