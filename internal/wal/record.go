// Log record framing and the typed record bodies.
//
// On-disk frame:
//
//	uint32 length   (big-endian, length of payload)
//	uint32 crc32    (IEEE, over payload)
//	payload:
//	    uint64 lsn  (big-endian, monotonically increasing from 1)
//	    byte   type (recCreate | recInsert | recEpoch)
//	    body        (type-specific, see below)
//
// Bodies use the storage package's binary codec: recCreate carries the
// length-prefixed schema JSON, recInsert a uvarint-prefixed table name
// plus the encoded row batch, recEpoch nothing (it marks an Analyze
// stats-epoch bump; replay re-runs Analyze regardless, so the record
// is informational).
//
// A decoder distinguishes three end states: a clean end (zero bytes
// left), a torn tail (partial frame or CRC mismatch at the very end —
// the write the crash interrupted), and mid-log corruption (garbage
// with valid data after it — a damaged disk, which recovery refuses to
// paper over).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
	"orthoq/internal/storage"
)

// Record types.
const (
	recCreate byte = 1
	recInsert byte = 2
	recEpoch  byte = 3
)

// frameHeader is the fixed frame prefix: length + CRC.
const frameHeader = 8

// appendFrame appends one framed record (lsn, typ, body) to buf.
func appendFrame(buf []byte, lsn uint64, typ byte, body []byte) []byte {
	payloadLen := 8 + 1 + len(body)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0) // CRC placeholder
	start := len(buf)
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = append(buf, typ)
	buf = append(buf, body...)
	binary.BigEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[start:]))
	return buf
}

// record is one decoded log record.
type record struct {
	lsn  uint64
	typ  byte
	body []byte
}

// errTorn marks a partial or checksum-failing record at the end of the
// stream — the expected signature of a crash mid-append.
var errTorn = fmt.Errorf("wal: torn record")

// decodeFrame decodes the first record in buf, returning the record,
// the remainder, and the framed size consumed. A partial frame or a
// CRC mismatch yields errTorn; the caller decides whether that is a
// tolerable tail (last segment) or fatal mid-log corruption.
func decodeFrame(buf []byte) (record, []byte, int, error) {
	if len(buf) < frameHeader {
		return record{}, nil, 0, errTorn
	}
	payloadLen := binary.BigEndian.Uint32(buf)
	crc := binary.BigEndian.Uint32(buf[4:])
	if payloadLen < 9 || uint64(len(buf)-frameHeader) < uint64(payloadLen) {
		return record{}, nil, 0, errTorn
	}
	payload := buf[frameHeader : frameHeader+int(payloadLen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return record{}, nil, 0, errTorn
	}
	rec := record{
		lsn:  binary.BigEndian.Uint64(payload),
		typ:  payload[8],
		body: payload[9:],
	}
	n := frameHeader + int(payloadLen)
	return rec, buf[n:], n, nil
}

// hasFrameAfter reports whether any offset past the first byte of buf
// decodes as a valid frame. buf starts at a frame that failed to
// decode; a valid frame after it means the damage is mid-log
// corruption (the disk lost synced bytes with synced data after them),
// not the torn tail of a crash-interrupted final append.
func hasFrameAfter(buf []byte) bool {
	for i := 1; i+frameHeader <= len(buf); i++ {
		if _, _, _, err := decodeFrame(buf[i:]); err == nil {
			return true
		}
	}
	return false
}

// encodeCreateBody builds a recCreate body.
func encodeCreateBody(schema *catalog.Table) ([]byte, error) {
	return storage.AppendSchema(nil, schema)
}

// decodeCreateBody parses a recCreate body.
func decodeCreateBody(body []byte) (*catalog.Table, error) {
	schema, rest, err := storage.DecodeSchema(body)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: trailing bytes in create record")
	}
	return schema, nil
}

// encodeInsertBody builds a recInsert body.
func encodeInsertBody(table string, rows []types.Row) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(table)))
	buf = append(buf, table...)
	return storage.AppendRows(buf, rows)
}

// decodeInsertBody parses a recInsert body.
func decodeInsertBody(body []byte) (string, []types.Row, error) {
	l, w := binary.Uvarint(body)
	if w <= 0 || uint64(len(body)-w) < l {
		return "", nil, fmt.Errorf("wal: bad insert record")
	}
	table := string(body[w : w+int(l)])
	rows, rest, err := storage.DecodeRows(body[w+int(l):])
	if err != nil {
		return "", nil, err
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("wal: trailing bytes in insert record")
	}
	return table, rows, nil
}
