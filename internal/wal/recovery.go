// Recovery: Open rebuilds the store a crash (or clean shutdown) left
// behind — load the latest checkpoint, replay the log tail, truncate a
// torn final record — and returns a running Manager over a fresh
// active segment.
//
// Replay tolerances are deliberate:
//
//   - A torn or CRC-failing record at the very end of the LAST segment
//     is the expected signature of a crash mid-append: the record was
//     never acknowledged, so it is truncated away and counted.
//   - The same damage anywhere else — mid-segment, or in a segment with
//     later segments after it — means the disk lost data it had synced.
//     That is not recoverable by pretending; Open fails loudly.
//   - Records at or below a table's checkpointed LSN are skipped (their
//     effects are already in the snapshot); creates of tables that
//     already exist are skipped the same way.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"orthoq/internal/obs"
	"orthoq/internal/sql/catalog"
	"orthoq/internal/storage"
)

// RecoveryInfo describes what Open's recovery did.
type RecoveryInfo struct {
	// CheckpointLSN is the LSN of the loaded checkpoint (0 = none).
	CheckpointLSN uint64
	// ReplayedRecords and ReplayedBytes measure the applied log tail.
	ReplayedRecords uint64
	ReplayedBytes   uint64
	// TornTailTruncated reports that a torn final record was discarded.
	TornTailTruncated bool
	// Duration is the recovery wall time.
	Duration time.Duration
}

// Open recovers the data directory and returns a running Manager plus
// the recovered store. The store has no journal attached yet — the
// caller wires store.SetJournal(m) once any unlogged bootstrap
// (e.g. TPC-H seeding of a fresh directory) is done.
func Open(opts Options) (*Manager, *storage.Store, *RecoveryInfo, error) {
	start := time.Now()
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	met := opts.Metrics
	if met == nil {
		met = &obs.WALMetrics{}
	}
	policy := opts.Policy
	if policy == "" {
		policy = SyncInterval
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}

	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, nil, err
	}
	names, err := fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, nil, err
	}
	info := &RecoveryInfo{}

	// A stray CHECKPOINT.tmp is a checkpoint that crashed before its
	// commit rename; the log still covers everything it held.
	hasCkpt := false
	var segNames []string
	for _, name := range names {
		switch {
		case name == ckptTmp:
			if err := fs.Remove(filepath.Join(opts.Dir, ckptTmp)); err != nil {
				return nil, nil, nil, err
			}
			if err := fs.SyncDir(opts.Dir); err != nil {
				return nil, nil, nil, err
			}
		case name == ckptName:
			hasCkpt = true
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			segNames = append(segNames, name)
		}
	}
	sort.Strings(segNames) // hex-padded first-LSN names: order = LSN order

	var st *storage.Store
	if hasCkpt {
		st, info.CheckpointLSN, err = readCheckpoint(fs, opts.Dir)
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		st = storage.New(catalog.New())
	}

	// Replay the log tail over the checkpoint.
	maxLSN := info.CheckpointLSN
	var segPaths []string
	var logBytes int64
	for i, name := range segNames {
		path := filepath.Join(opts.Dir, name)
		segPaths = append(segPaths, path)
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, nil, nil, err
		}
		logBytes += int64(len(data))
		off := 0
		rest := data
		for len(rest) > 0 {
			rec, next, n, err := decodeFrame(rest)
			if err != nil {
				if i != len(segNames)-1 {
					return nil, nil, nil, fmt.Errorf("wal: corrupt record at %s+%d with later segments present", name, off)
				}
				if hasFrameAfter(rest) {
					// Valid, synced records follow the damage in the same
					// segment: a mid-segment CRC flip, not a torn tail.
					// Truncating would silently discard acknowledged data.
					return nil, nil, nil, fmt.Errorf("wal: corrupt record at %s+%d with valid records after it", name, off)
				}
				// Torn tail of the final segment: the crash-interrupted,
				// never-acknowledged write. Truncate it away.
				if err := fs.Truncate(path, int64(off)); err != nil {
					return nil, nil, nil, err
				}
				logBytes -= int64(len(rest))
				info.TornTailTruncated = true
				met.TornTruncations.Add(1)
				break
			}
			if err := applyRecord(st, rec); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: replay %s+%d: %w", name, off, err)
			}
			if rec.lsn > maxLSN {
				maxLSN = rec.lsn
			}
			info.ReplayedRecords++
			info.ReplayedBytes += uint64(n)
			off += n
			rest = next
		}
	}

	// Fresh active segment for the new epoch. Its name can collide with
	// an existing record-free final segment (one created by a rotation
	// that crashed before any append, or whose only record was torn and
	// truncated away): Create truncates it harmlessly — any surviving
	// record in it would have raised maxLSN — but the stale path must
	// not be tracked twice, or the next checkpoint would Remove it
	// twice and poison the manager on the second ENOENT.
	nextLSN := maxLSN + 1
	seg := filepath.Join(opts.Dir, segName(nextLSN))
	keep := segPaths[:0]
	for _, p := range segPaths {
		if p != seg {
			keep = append(keep, p)
		}
	}
	segPaths = keep
	f, err := fs.Create(seg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := fs.SyncDir(opts.Dir); err != nil {
		f.Close()
		return nil, nil, nil, err
	}

	m := &Manager{
		dir:        opts.Dir,
		policy:     policy,
		interval:   interval,
		ckptBytes:  opts.CheckpointBytes,
		fs:         fs,
		met:        met,
		store:      st,
		f:          f,
		segs:       append(segPaths, seg),
		nextLSN:    nextLSN,
		durableLSN: maxLSN,
		syncedLSN:  maxLSN,
		ckptC:      make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	m.lastAppended = maxLSN
	m.logBytes = logBytes
	m.cond = sync.NewCond(&m.mu)
	if policy == SyncInterval {
		m.wg.Add(1)
		go m.flusher()
	}
	m.wg.Add(1)
	go m.checkpointer()

	info.Duration = time.Since(start)
	met.ReplayRecords.Store(info.ReplayedRecords)
	met.ReplayBytes.Store(info.ReplayedBytes)
	met.ReplayDurationUS.Store(info.Duration.Microseconds())
	return m, st, info, nil
}

// readCheckpoint parses and validates the CHECKPOINT file. Corruption
// here is fatal: the checkpoint was fsynced before its commit rename,
// so damage means the disk lost synced data.
func readCheckpoint(fs FS, dir string) (*storage.Store, uint64, error) {
	data, err := fs.ReadFile(filepath.Join(dir, ckptName))
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(ckptMagic)+8+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, fmt.Errorf("wal: corrupt checkpoint: bad header")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("wal: corrupt checkpoint: checksum mismatch")
	}
	ckptLSN := binary.BigEndian.Uint64(body[len(ckptMagic):])
	st, err := storage.ReadSnapshot(body[len(ckptMagic)+8:])
	if err != nil {
		return nil, 0, fmt.Errorf("wal: corrupt checkpoint: %w", err)
	}
	return st, ckptLSN, nil
}

// applyRecord re-applies one replayed record to the store.
func applyRecord(st *storage.Store, rec record) error {
	switch rec.typ {
	case recCreate:
		schema, err := decodeCreateBody(rec.body)
		if err != nil {
			return err
		}
		return st.ApplyCreateTable(schema, rec.lsn)
	case recInsert:
		table, rows, err := decodeInsertBody(rec.body)
		if err != nil {
			return err
		}
		return st.ApplyInsert(table, rows, rec.lsn)
	case recEpoch:
		return nil
	default:
		return fmt.Errorf("wal: unknown record type %d", rec.typ)
	}
}
