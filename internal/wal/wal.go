// Manager: the write-ahead-log writer and group-commit flusher. It
// implements storage.Journal — the store calls LogInsert/LogCreateTable
// under the mutating table's lock before publishing — and owns the
// active log segment, the LSN counter, and the durability watermark.
//
// Sync policies trade write latency against the crash-loss window:
//
//   - SyncAlways: every record is fsynced before acknowledgement — no
//     acknowledged write is ever lost, at one fsync per mutation.
//   - SyncInterval: group commit. Writers append under the log lock and
//     block until the flusher's next tick fsyncs the segment; one fsync
//     acknowledges every writer that appended since the previous one.
//     Same no-acked-loss guarantee, amortized fsync cost, bounded
//     added latency (≤ the tick interval).
//   - SyncOff: acknowledge immediately, never fsync the log on the
//     write path. A crash loses the unsynced suffix — the embedded /
//     benchmark setting.
//
// Error model: the manager is fail-stop. The first I/O error (or
// injected crash) poisons it — every subsequent and in-flight append
// returns the error, nothing further touches the disk, and the store
// above keeps serving reads from memory. The operator restarts the
// process and recovery re-establishes the durable state.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"orthoq/internal/obs"
	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/types"
	"orthoq/internal/storage"
)

// SyncPolicy selects when a log append is acknowledged.
type SyncPolicy string

// Sync policies.
const (
	SyncAlways   SyncPolicy = "always"
	SyncInterval SyncPolicy = "interval"
	SyncOff      SyncPolicy = "off"
)

// ParsePolicy validates a sync-policy string ("" = SyncInterval).
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncInterval, nil
	case SyncAlways, SyncInterval, SyncOff:
		return SyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown sync policy %q (want always, interval, or off)", s)
	}
}

// ErrClosed is returned by appends after Close or Kill.
var ErrClosed = errors.New("wal: closed")

// DefaultInterval is the group-commit flusher tick.
const DefaultInterval = 2 * time.Millisecond

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Policy is the sync policy (default SyncInterval).
	Policy SyncPolicy
	// Interval is the group-commit tick (default DefaultInterval).
	Interval time.Duration
	// CheckpointBytes triggers a background checkpoint when the
	// un-checkpointed log exceeds it (0 = manual checkpoints only).
	CheckpointBytes int64
	// FS is the filesystem seam (default OSFS).
	FS FS
	// Metrics receives durability counters (default: a private registry).
	Metrics *obs.WALMetrics
}

// Manager is the write-ahead-log writer. Create one with Open, which
// also runs recovery and returns the recovered store.
type Manager struct {
	dir       string
	policy    SyncPolicy
	interval  time.Duration
	ckptBytes int64
	fs        FS
	met       *obs.WALMetrics
	store     *storage.Store

	mu   sync.Mutex
	cond *sync.Cond
	f    File
	segs []string // all live segment paths, oldest first (last = active)

	nextLSN      uint64 // LSN the next append will take
	lastAppended uint64
	durableLSN   uint64 // acknowledgement watermark (== syncedLSN except under SyncOff)
	syncedLSN    uint64 // highest LSN actually fsynced
	pending      int    // records appended since the last fsync
	logBytes     int64
	err          error // sticky fail-stop error

	ckptMu sync.Mutex // serializes checkpoints
	ckptC  chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// segName returns the file name of the segment whose first record will
// carry firstLSN. Hex-padded so lexicographic order is LSN order.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// Store returns the store recovered (or created) by Open.
func (m *Manager) Store() *storage.Store { return m.store }

// Policy returns the manager's sync policy.
func (m *Manager) Policy() SyncPolicy { return m.policy }

// fail poisons the manager with err (first error wins) and wakes every
// blocked writer. Callers must hold m.mu.
func (m *Manager) fail(err error) error {
	if m.err == nil {
		m.err = err
	}
	m.cond.Broadcast()
	return m.err
}

// append frames and writes one record, then waits for durability per
// the sync policy. Returns the record's LSN.
func (m *Manager) append(typ byte, body []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, m.err
	}
	lsn := m.nextLSN
	frame := appendFrame(nil, lsn, typ, body)
	if _, err := m.f.Write(frame); err != nil {
		return 0, m.fail(err)
	}
	m.nextLSN++
	m.lastAppended = lsn
	m.pending++
	m.logBytes += int64(len(frame))
	m.met.Appends.Add(1)
	m.met.Bytes.Add(uint64(len(frame)))

	switch m.policy {
	case SyncOff:
		// Acknowledge without durability: syncedLSN stays behind so a
		// later Sync/Close/checkpoint barrier still fsyncs the suffix.
		m.durableLSN = lsn
	case SyncAlways:
		if err := m.f.Sync(); err != nil {
			return 0, m.fail(err)
		}
		m.met.Fsyncs.Add(1)
		m.durableLSN = lsn
		m.syncedLSN = lsn
		m.pending = 0
	case SyncInterval:
		for m.durableLSN < lsn && m.err == nil {
			m.cond.Wait()
		}
		// Durability decides the outcome, not the poison flag: if the
		// flusher made this record durable before a later failure, the
		// write is acknowledged.
		if m.durableLSN < lsn {
			return 0, m.err
		}
	}
	m.maybeTriggerCheckpointLocked()
	return lsn, nil
}

// flushLocked fsyncs the active segment and acknowledges everything
// appended so far. Callers must hold m.mu.
func (m *Manager) flushLocked(group bool) error {
	if m.err != nil {
		return m.err
	}
	if m.syncedLSN >= m.lastAppended {
		return nil
	}
	if err := m.f.Sync(); err != nil {
		return m.fail(err)
	}
	m.met.Fsyncs.Add(1)
	if group && m.pending > 0 {
		m.met.GroupCommits.Add(1)
		m.met.GroupCommitRecords.Add(uint64(m.pending))
	}
	m.durableLSN = m.lastAppended
	m.syncedLSN = m.lastAppended
	m.pending = 0
	m.cond.Broadcast()
	return nil
}

// flusher is the group-commit goroutine (SyncInterval only): each tick
// it fsyncs once and acknowledges the whole waiting batch.
func (m *Manager) flusher() {
	defer m.wg.Done()
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			// Final flush so no writer stays blocked across shutdown.
			// (Kill poisons the manager before signalling quit, which
			// makes this a no-op there — unsynced data must stay lost.)
			m.mu.Lock()
			_ = m.flushLocked(true)
			m.mu.Unlock()
			return
		case <-t.C:
			m.mu.Lock()
			_ = m.flushLocked(true)
			m.mu.Unlock()
		}
	}
}

// checkpointer runs background checkpoints when the log-size trigger
// fires.
func (m *Manager) checkpointer() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case <-m.ckptC:
			_ = m.Checkpoint()
		}
	}
}

// maybeTriggerCheckpointLocked nudges the checkpointer when the
// un-checkpointed log has outgrown the threshold. Non-blocking: a
// checkpoint already in flight absorbs the trigger.
func (m *Manager) maybeTriggerCheckpointLocked() {
	if m.ckptBytes <= 0 || m.logBytes < m.ckptBytes {
		return
	}
	select {
	case m.ckptC <- struct{}{}:
	default:
	}
}

// LogCreateTable implements storage.Journal.
func (m *Manager) LogCreateTable(schema *catalog.Table) (uint64, error) {
	body, err := encodeCreateBody(schema)
	if err != nil {
		return 0, err
	}
	return m.append(recCreate, body)
}

// LogInsert implements storage.Journal.
func (m *Manager) LogInsert(table string, rows []types.Row) (uint64, error) {
	return m.append(recInsert, encodeInsertBody(table, rows))
}

// LogEpoch records an Analyze stats-epoch bump. The record is
// informational — recovery re-runs Analyze unconditionally — but it
// keeps the log a complete mutation history.
func (m *Manager) LogEpoch() (uint64, error) {
	return m.append(recEpoch, nil)
}

// Sync forces an fsync of the active segment, acknowledging all
// appended records (a manual barrier for SyncOff / graceful shutdown).
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked(false)
}

// stop halts the background goroutines exactly once.
func (m *Manager) stop() {
	m.once.Do(func() {
		close(m.quit)
	})
	m.wg.Wait()
}

// Close shuts the log down gracefully: a final fsync acknowledges
// every appended record, background goroutines stop, and the segment
// is closed. Appends after Close fail with ErrClosed.
func (m *Manager) Close() error {
	m.mu.Lock()
	err := m.flushLocked(false)
	if m.err == nil {
		m.err = ErrClosed
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop()
	m.mu.Lock()
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
	m.mu.Unlock()
	if err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return nil
}

// Kill abandons the log without flushing or checkpointing — the
// in-process stand-in for kill -9, used by crash tests and the
// recovery benchmark. The manager is poisoned before the goroutines
// are stopped, so neither the flusher's shutdown flush nor an
// in-flight checkpoint can make unsynced data durable; the next Open
// must replay the log to recover.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.err == nil {
		m.err = ErrClosed
	}
	m.cond.Broadcast()
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
	m.mu.Unlock()
	m.stop()
}
