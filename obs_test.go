package orthoq

// End-to-end tests of the observability layer: per-operator span
// trees (timing algebra, cross-execution-path count identity), the
// engine metrics registry (delta assertions for every counter under
// fault injection), the JSONL query log, and the expvar hookup.

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"orthoq/internal/exec/faultinject"
	"orthoq/internal/obs"
)

// flattenSpans renders a span tree one line per node with rows and
// opens, for exact cross-path comparison.
func flattenSpans(sp *obs.Span) string {
	var b strings.Builder
	var walk func(s *obs.Span, depth int)
	walk = func(s *obs.Span, depth int) {
		fmt.Fprintf(&b, "%*s%s rows=%d opens=%d\n", depth*2, "", s.Op, s.Rows, s.Opens)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(sp, 0)
	return b.String()
}

// TestSpanTreeInvariants: the timing algebra holds on every traced
// benchmark query — Self within [0, Busy] at every node, inclusive
// parent time covering the children (except across a parallel
// boundary, where children are measured in cumulative worker time),
// and the root span's row count matching the result.
func TestSpanTreeInvariants(t *testing.T) {
	db := sharedDB(t)
	cfg := DefaultConfig()
	cfg.MaxSteps = 300
	cfg.Trace = true
	for i, name := range TPCHQueryNames() {
		sql, _ := TPCHQuery(name)
		c := cfg
		if i%2 == 1 {
			c.Parallelism = 4
		}
		rows, err := db.QueryCfg(sql, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp := rows.Spans()
		if sp == nil {
			t.Fatalf("%s: traced run returned nil Spans", name)
		}
		if sp.Rows != int64(len(rows.Data)) {
			t.Errorf("%s: root span rows=%d, result has %d", name, sp.Rows, len(rows.Data))
		}
		sp.Walk(func(s *obs.Span) {
			if s.Self < 0 || s.Self > s.Busy {
				t.Errorf("%s/%s: Self=%v outside [0, Busy=%v]", name, s.Op, s.Self, s.Busy)
			}
			if s.Opens < 0 || s.Rows < 0 {
				t.Errorf("%s/%s: negative counters rows=%d opens=%d", name, s.Op, s.Rows, s.Opens)
			}
			if s.Workers > 0 {
				return // children ran on workers; Busy sums across them
			}
			var sum int64
			for _, c := range s.Children {
				sum += int64(c.Busy)
			}
			if int64(s.Busy) < sum {
				t.Errorf("%s/%s: inclusive Busy=%v < children sum %v", name, s.Op, s.Busy, sum)
			}
		})
	}

	// No trace requested → no spans.
	rows, err := db.QueryCfg("select count(*) as n from orders", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rows.Spans() != nil {
		t.Error("untraced run has non-nil Spans")
	}
}

// TestParallelSpanBoundary: a parallel aggregation run surfaces its
// exchange activity on exactly the boundary spans — workers, morsels,
// and cumulative worker time — and the totals agree with the Rows
// header fields.
func TestParallelSpanBoundary(t *testing.T) {
	db := sharedDB(t)
	sql, _ := TPCHQuery("Q1")
	cfg := DefaultConfig()
	cfg.MaxSteps = 300
	cfg.Parallelism = 4
	cfg.Trace = true
	rows, err := db.QueryCfg(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Workers == 0 {
		t.Skip("plan did not parallelize at this scale")
	}
	var workers, morsels int64
	var boundary *obs.Span
	rows.Spans().Walk(func(s *obs.Span) {
		workers += s.Workers
		morsels += s.Morsels
		if s.Workers > 0 && boundary == nil {
			boundary = s
		}
	})
	if boundary == nil {
		t.Fatal("no span carries Workers > 0 despite parallel execution")
	}
	if boundary.WorkerTime <= 0 {
		t.Errorf("boundary %s: WorkerTime = %v, want > 0", boundary.Op, boundary.WorkerTime)
	}
	if boundary.Self != boundary.Busy {
		t.Errorf("boundary %s: Self=%v != Busy=%v (parallel-boundary rule)",
			boundary.Op, boundary.Self, boundary.Busy)
	}
	if workers != rows.Workers {
		t.Errorf("span workers sum=%d, Rows.Workers=%d", workers, rows.Workers)
	}
	if morsels != rows.Morsels {
		t.Errorf("span morsels sum=%d, Rows.Morsels=%d", morsels, rows.Morsels)
	}
}

// TestTraceCountsBatchVsRow: per-operator row and open counts are an
// execution-path invariant — the batched path with compiled
// expressions and the row-at-a-time path with interpreted expressions
// must report identical counts on identical plans, across the
// benchmark suite and a fuzz corpus. This pins the counting contract
// (each produced row noted exactly once regardless of pull mode).
func TestTraceCountsBatchVsRow(t *testing.T) {
	db := sharedDB(t)
	var sqls []string
	for _, n := range TPCHQueryNames() {
		q, _ := TPCHQuery(n)
		sqls = append(sqls, q)
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		sqls = append(sqls, randQuery(r))
	}
	for i, sql := range sqls {
		cfgB := DefaultConfig()
		cfgB.MaxSteps = 200
		cfgB.Trace = true
		cfgR := cfgB
		cfgR.DisableBatch = true
		rb, err := db.QueryCfg(sql, cfgB)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := db.QueryCfg(sql, cfgR)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Plan != rr.Plan {
			t.Fatalf("query %d: plans differ between batch and row runs\nsql: %.80s", i, sql)
		}
		cb, cr := flattenSpans(rb.Spans()), flattenSpans(rr.Spans())
		if cb != cr {
			t.Errorf("query %d: per-operator counts differ\nsql: %.80s\nbatch:\n%s\nrow:\n%s",
				i, sql, cb, cr)
		}
	}
}

// TestTraceCountsSerialVsParallel: for aggregation-only queries the
// per-operator row counts are also a parallelism invariant. (Join
// plans are excluded: under an exchange each worker re-executes the
// build side, legitimately multiplying build-side counts.)
func TestTraceCountsSerialVsParallel(t *testing.T) {
	db := sharedDB(t)
	for _, name := range []string{"Q1", "Q6"} {
		sql, _ := TPCHQuery(name)
		cfgS := DefaultConfig()
		cfgS.MaxSteps = 300
		cfgS.Trace = true
		cfgP := cfgS
		cfgP.Parallelism = 4
		rs, err := db.QueryCfg(sql, cfgS)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := db.QueryCfg(sql, cfgP)
		if err != nil {
			t.Fatal(err)
		}
		var serial, par []string
		rs.Spans().Walk(func(s *obs.Span) {
			serial = append(serial, fmt.Sprintf("%s rows=%d", s.Op, s.Rows))
		})
		rp.Spans().Walk(func(s *obs.Span) {
			par = append(par, fmt.Sprintf("%s rows=%d", s.Op, s.Rows))
		})
		a, b := strings.Join(serial, "\n"), strings.Join(par, "\n")
		if a != b {
			t.Errorf("%s: per-operator rows differ serial vs parallel\nserial:\n%s\nparallel:\n%s",
				name, a, b)
		}
	}
}

// TestMetricsDeltas drives one execution of every outcome class
// against a private DB and asserts the exact counter movements.
func TestMetricsDeltas(t *testing.T) {
	db, err := OpenTPCH(0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxSteps = 300

	snap := func() obs.Snapshot { return db.Metrics() }

	// Success: queries, rows, exec time, histogram, peak memory. A
	// generous budget turns memory accounting on (ungoverned runs skip
	// it) without coming near a spill.
	before := snap()
	memCfg := cfg
	memCfg.MemBudget = 1 << 30
	rows, err := db.QueryCfg(
		"select o_orderstatus, count(*) as n from orders, customer where o_custkey = c_custkey group by o_orderstatus", memCfg)
	if err != nil {
		t.Fatal(err)
	}
	after := snap()
	if d := after.Queries - before.Queries; d != 1 {
		t.Errorf("Queries delta = %d, want 1", d)
	}
	if d := after.RowsReturned - before.RowsReturned; d != uint64(len(rows.Data)) {
		t.Errorf("RowsReturned delta = %d, want %d", d, len(rows.Data))
	}
	if after.Failures != before.Failures {
		t.Errorf("Failures moved on success: %d → %d", before.Failures, after.Failures)
	}
	if after.ExecTime <= before.ExecTime {
		t.Error("ExecTime did not advance")
	}
	if d := after.Durations.N - before.Durations.N; d != 1 {
		t.Errorf("histogram N delta = %d, want 1", d)
	}
	if after.PeakMemMax <= 0 {
		t.Error("PeakMemMax not raised by a hash join build")
	}
	if after.PeakMemMax < rows.PeakMemBytes {
		t.Errorf("PeakMemMax=%d below this run's peak %d", after.PeakMemMax, rows.PeakMemBytes)
	}

	// Each failure class: Queries and Failures advance, the class
	// counter advances, RowsReturned does not.
	fail := func(name, wantClass string, run func() error) {
		t.Helper()
		before := snap()
		if err := run(); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		after := snap()
		if d := after.Queries - before.Queries; d != 1 {
			t.Errorf("%s: Queries delta = %d, want 1", name, d)
		}
		if d := after.Failures - before.Failures; d != 1 {
			t.Errorf("%s: Failures delta = %d, want 1", name, d)
		}
		if after.RowsReturned != before.RowsReturned {
			t.Errorf("%s: RowsReturned moved on failure", name)
		}
		pick := func(s obs.Snapshot) uint64 {
			switch wantClass {
			case obs.ClassTimeout:
				return s.Timeouts
			case obs.ClassCanceled:
				return s.Cancels
			case obs.ClassRowBudget:
				return s.RowBudgetHits
			case obs.ClassMemBudget:
				return s.MemBudgetHits
			case obs.ClassInternal:
				return s.PanicsContained
			default:
				return s.OtherErrors
			}
		}
		if d := pick(after) - pick(before); d != 1 {
			t.Errorf("%s: %s counter delta = %d, want 1", name, wantClass, d)
		}
	}

	fail("timeout", obs.ClassTimeout, func() error {
		c := cfg
		c.Timeout = 10 * time.Millisecond
		c.faults = faultinject.New(
			faultinject.Rule{Point: "next", Kind: faultinject.Delay, Sleep: 50 * time.Millisecond})
		_, err := db.QueryCfg("select count(*) from orders", c)
		return err
	})
	fail("canceled", obs.ClassCanceled, func() error {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := db.QueryCfgContext(ctx, "select count(*) from lineitem", cfg)
		return err
	})
	fail("row_budget", obs.ClassRowBudget, func() error {
		c := cfg
		c.RowBudget = 10
		_, err := db.QueryCfg("select count(*) from lineitem", c)
		return err
	})
	fail("mem_budget", obs.ClassMemBudget, func() error {
		c := cfg
		c.MemBudget = 1 << 10
		c.DisableSpill = true
		_, err := db.QueryCfg("select o_custkey, count(*) from orders group by o_custkey", c)
		return err
	})
	fail("internal", obs.ClassInternal, func() error {
		c := cfg
		c.faults = faultinject.New(
			faultinject.Rule{Point: "next", Kind: faultinject.Panic, After: 3})
		_, err := db.QueryCfg("select o_custkey, count(*) from orders group by o_custkey", c)
		return err
	})
	fail("other", obs.ClassOther, func() error {
		c := cfg
		c.faults = faultinject.New(
			faultinject.Rule{Point: "next", Kind: faultinject.Error, After: 3})
		_, err := db.QueryCfg("select count(*) from orders", c)
		return err
	})

	// Spills: a small budget with spilling allowed.
	before = snap()
	spillCfg := cfg
	spillCfg.MemBudget = 16 << 10
	r2, err := db.QueryCfg("select o_custkey, count(*) as n from orders group by o_custkey", spillCfg)
	if err != nil {
		t.Fatal(err)
	}
	after = snap()
	if r2.Spills == 0 {
		t.Skip("budget did not force a spill at this scale")
	}
	if d := after.Spills - before.Spills; d != uint64(r2.Spills) {
		t.Errorf("Spills delta = %d, Rows.Spills = %d", d, r2.Spills)
	}

	// Workers and morsels: a parallel run.
	before = snap()
	parCfg := cfg
	parCfg.Parallelism = 4
	r3, err := db.QueryCfg("select sum(l_extendedprice) as s from lineitem", parCfg)
	if err != nil {
		t.Fatal(err)
	}
	after = snap()
	if r3.Workers > 0 {
		if d := after.WorkersSpawned - before.WorkersSpawned; d != uint64(r3.Workers) {
			t.Errorf("WorkersSpawned delta = %d, Rows.Workers = %d", d, r3.Workers)
		}
		if d := after.MorselsDispatched - before.MorselsDispatched; d != uint64(r3.Morsels) {
			t.Errorf("MorselsDispatched delta = %d, Rows.Morsels = %d", d, r3.Morsels)
		}
	}
}

// TestMetricsCacheCounters: the snapshot overlays the plan cache's own
// counters, so one call reports engine and cache state together.
func TestMetricsCacheCounters(t *testing.T) {
	db, err := OpenTPCH(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := db.QueryCfg("select count(*) as n from customer", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryCfg("select count(*) as n from customer", cfg); err != nil {
		t.Fatal(err)
	}
	s := db.Metrics()
	cs := db.CacheStats()
	if s.CacheHits != cs.Hits || s.CacheMisses != cs.Misses {
		t.Errorf("snapshot cache counters (%d/%d) disagree with CacheStats (%d/%d)",
			s.CacheHits, s.CacheMisses, cs.Hits, cs.Misses)
	}
	if s.CacheHits == 0 {
		t.Error("second identical query did not register a cache hit")
	}
}

// TestQueryLogJSONL: every completed execution writes exactly one
// well-formed JSON line — success, failure, and streaming.
func TestQueryLogJSONL(t *testing.T) {
	db, err := OpenTPCH(0.001, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.MaxSteps = 300
	cfg.QueryLog = &buf

	// 1: success — a correlated scalar aggregation, so the rewrite
	// rules that decorrelated it appear in the record.
	rows, err := db.QueryCfg(`select c_custkey from customer
		where 1000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2: failure (row budget).
	c := cfg
	c.RowBudget = 5
	if _, err := db.QueryCfg("select count(*) from lineitem", c); err == nil {
		t.Fatal("expected a row-budget error")
	}
	// 3: stream, partially consumed then closed.
	st, err := db.QueryStream("select o_orderkey from orders", cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for i := 0; i < 10; i++ {
		if _, ok, err := st.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
		streamed++
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("query log has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var recs []obs.QueryRecord
	for i, line := range lines {
		var r obs.QueryRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if r.Fingerprint == "" {
			t.Errorf("line %d: empty fingerprint", i)
		}
		if _, err := time.Parse(time.RFC3339Nano, r.Time); err != nil {
			t.Errorf("line %d: bad ts: %v", i, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Rows != int64(len(rows.Data)) || recs[0].ErrorClass != "" {
		t.Errorf("success record: %+v", recs[0])
	}
	if len(recs[0].Rules) == 0 {
		t.Error("success record lists no rewrite rules for a decorrelated aggregation")
	}
	if recs[0].Cache == "" {
		t.Errorf("success record has no cache status: %+v", recs[0])
	}
	if recs[1].ErrorClass != obs.ClassRowBudget || recs[1].Error == "" {
		t.Errorf("failure record: %+v", recs[1])
	}
	if recs[2].Rows != int64(streamed) {
		t.Errorf("stream record rows = %d, want %d (rows actually pulled)", recs[2].Rows, streamed)
	}
	if recs[2].Cache != "bypass" {
		t.Errorf("stream record cache = %q, want bypass", recs[2].Cache)
	}
}

// TestTracedFaultsNoLeaks: tracing changes no lifecycle guarantees —
// under injected faults with spans on and spilling active, goroutines
// drain and no spill file survives.
func TestTracedFaultsNoLeaks(t *testing.T) {
	db := sharedDB(t)
	dir := t.TempDir()
	base := runtime.NumGoroutine()
	rules := []faultinject.Rule{
		{Point: "next", Kind: faultinject.Error, After: 40},
		{Point: "next", Kind: faultinject.Panic, After: 15},
		{Point: "open", Kind: faultinject.Error},
		{Op: "GroupBy", Kind: faultinject.AllocFail, After: 2},
	}
	sql := `select o_custkey, count(*) as n, sum(o_totalprice) as s
	        from orders, customer where o_custkey = c_custkey
	        group by o_custkey`
	for _, par := range []int{1, 4} {
		for _, rule := range rules {
			cfg := DefaultConfig()
			cfg.MaxSteps = 300
			cfg.Trace = true
			cfg.Parallelism = par
			cfg.MemBudget = 32 << 10
			cfg.SpillDir = dir
			cfg.faults = faultinject.New(rule)
			rows, err := db.QueryCfg(sql, cfg)
			if err == nil && rows.Spans() == nil {
				t.Error("traced successful run missing spans")
			}
		}
	}
	waitGoroutines(t, base)
	expectEmptyDir(t, dir, "traced fault runs")
}

// TestExpvarAndMarshal: the registry is published to expvar at Open
// and the snapshot marshals from there.
func TestExpvarAndMarshal(t *testing.T) {
	db := sharedDB(t) // Open published "orthoq"
	if _, err := db.Query("select count(*) as n from nation"); err != nil {
		t.Fatal(err)
	}
	v := expvar.Get("orthoq")
	if v == nil {
		t.Fatal(`expvar.Get("orthoq") = nil; Open did not publish the registry`)
	}
	var s obs.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar rendering is not a valid snapshot: %v", err)
	}
	if s.Queries == 0 {
		t.Error("published snapshot shows zero queries after a query ran")
	}
	if _, err := json.Marshal(db.Metrics()); err != nil {
		t.Fatal(err)
	}
}
