package orthoq

// Order-equivalence harness: every TPC-H benchmark query and a fuzz
// corpus run under forced physical-operator choices — merge vs hash
// join, streaming vs hash aggregation, sort elimination on and off,
// batch vs row execution, serial and parallel — and every variant must
// return the identical multiset of rows. Wherever the query has an
// ORDER BY, the variant must additionally return the identical total
// row sequence. The DisableSortElim variant is the oracle for sort
// elimination: it always executes the explicit Sort, so an ordered
// scan that delivered the wrong order would disagree with it here.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// orderedFingerprint renders rows in sequence with numeric rounding
// (parallel and reordered aggregation legally differ in float
// round-off).
func orderedFingerprint(rows *Rows) []string {
	keys := make([]string, len(rows.Data))
	for i, row := range rows.Data {
		parts := make([]string, len(row))
		for j, v := range row {
			if !v.IsNull() && v.Kind().Numeric() {
				f, _ := v.AsFloat()
				parts[j] = fmt.Sprintf("%.4f", f)
			} else {
				parts[j] = v.String()
			}
		}
		keys[i] = strings.Join(parts, "|")
	}
	return keys
}

func multisetOf(seq []string) []string {
	ms := append([]string(nil), seq...)
	sort.Strings(ms)
	return ms
}

// orderVariants is the forced-strategy grid. Baseline is DefaultConfig
// (auto join/agg, sort elimination on, batch, serial).
var orderVariants = []struct {
	name string
	mut  func(*Config)
}{
	{"join=hash", func(c *Config) { c.JoinStrategy = "hash" }},
	{"join=merge", func(c *Config) { c.JoinStrategy = "merge" }},
	{"agg=hash", func(c *Config) { c.AggStrategy = "hash" }},
	{"agg=stream", func(c *Config) { c.AggStrategy = "stream" }},
	{"sortelim=off", func(c *Config) { c.DisableSortElim = true }},
	{"row+merge+stream", func(c *Config) {
		c.DisableBatch = true
		c.JoinStrategy = "merge"
		c.AggStrategy = "stream"
	}},
	{"row+sortelim=off", func(c *Config) {
		c.DisableBatch = true
		c.DisableSortElim = true
	}},
	{"par4", func(c *Config) { c.Parallelism = 4 }},
	{"par4+merge+stream", func(c *Config) {
		c.Parallelism = 4
		c.JoinStrategy = "merge"
		c.AggStrategy = "stream"
	}},
}

// orderCorpus returns the harness queries beyond the TPC-H set:
// handcrafted order-sensitive shapes plus a slice of the random
// generator's output (which includes the ORDER BY / LIMIT / grouped-
// scan cases).
func orderCorpus() []string {
	qs := []string{
		`select o_orderkey from orders order by o_orderkey`,
		`select o_orderkey, o_totalprice from orders order by o_orderkey desc`,
		`select l_orderkey, l_linenumber from lineitem order by l_orderkey, l_linenumber`,
		`select o_orderkey from orders where o_totalprice > 1000 order by o_orderkey limit 25`,
		`select l_orderkey, sum(l_quantity) as q from lineitem group by l_orderkey order by l_orderkey`,
		`select l_orderkey, count(*) as n from lineitem where l_partkey > 40 group by l_orderkey`,
		`select o_orderkey, l_linenumber from orders join lineitem on l_orderkey = o_orderkey
		 order by o_orderkey, l_linenumber`,
		`select o_orderkey, c_name from customer join orders on o_custkey = c_custkey
		 where o_totalprice > 5000 order by o_orderkey`,
		`select o_orderkey from orders
		 where exists (select l_orderkey from lineitem where l_orderkey = o_orderkey and l_quantity > 30)
		 order by o_orderkey desc limit 20`,
		`select o_orderkey from orders
		 where not exists (select l_orderkey from lineitem where l_orderkey = o_orderkey)
		 order by o_orderkey`,
		`select c_custkey, c_name from customer left join orders on o_custkey = c_custkey
		 where o_orderkey is null order by c_custkey`,
	}
	r := rand.New(rand.NewSource(1616)) // the paper's DOI suffix digits
	for i := 0; i < 14; i++ {
		qs = append(qs, randQuery(r))
	}
	return qs
}

// TestOrderEquivalence is the order-equivalence property suite: for
// each query, each forced variant must agree with the baseline — as a
// multiset always, and as an exact sequence when the query orders its
// result.
func TestOrderEquivalence(t *testing.T) {
	db := sharedDB(t)
	base := DefaultConfig()
	base.MaxSteps = 300

	var sqls []string
	for _, name := range TPCHQueryNames() {
		sql, _ := TPCHQuery(name)
		sqls = append(sqls, sql)
	}
	sqls = append(sqls, orderCorpus()...)

	for i, sql := range sqls {
		want, err := db.QueryCfg(sql, base)
		if err != nil {
			t.Fatalf("query %d baseline: %v\nsql: %s", i, err, sql)
		}
		wantSeq := orderedFingerprint(want)
		wantMS := multisetOf(wantSeq)
		ordered := strings.Contains(strings.ToLower(sql), "order by")
		for _, v := range orderVariants {
			cfg := base
			v.mut(&cfg)
			got, err := db.QueryCfg(sql, cfg)
			if err != nil {
				t.Fatalf("query %d under %s: %v\nsql: %s", i, v.name, err, sql)
			}
			gotSeq := orderedFingerprint(got)
			if fmt.Sprint(multisetOf(gotSeq)) != fmt.Sprint(wantMS) {
				t.Fatalf("query %d: %s returned a different multiset\nsql: %s\nbase plan:\n%s\nvariant plan:\n%s",
					i, v.name, sql, want.Plan, got.Plan)
			}
			if ordered && fmt.Sprint(gotSeq) != fmt.Sprint(wantSeq) {
				t.Fatalf("query %d: %s broke the ORDER BY sequence\nsql: %s\nwant: %v\ngot:  %v\nvariant plan:\n%s",
					i, v.name, sql, wantSeq, gotSeq, got.Plan)
			}
		}
	}
}

// TestSortElidedOnOrderedIndex pins the tentpole end to end: an ORDER
// BY on an ordered-index key loses its Sort node (EliminateSort fires,
// the plan carries the order on the scan, EXPLAIN says so), while the
// DisableSortElim baseline keeps the Sort — and both orders agree.
func TestSortElidedOnOrderedIndex(t *testing.T) {
	db := sharedDB(t)
	sql := `select o_orderkey, o_totalprice from orders order by o_orderkey`
	cfg := DefaultConfig()

	r, err := db.QueryCfg(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Plan, "Sort") {
		t.Errorf("Sort not eliminated:\n%s", r.Plan)
	}
	if !strings.Contains(r.Plan, "order=") {
		t.Errorf("plan carries no scan order:\n%s", r.Plan)
	}
	found := false
	for _, ru := range r.Rules {
		if ru == "EliminateSort" {
			found = true
		}
	}
	if !found {
		t.Errorf("EliminateSort missing from rules %v", r.Rules)
	}

	off := cfg
	off.DisableSortElim = true
	r2, err := db.QueryCfg(sql, off)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r2.Plan, "Sort") {
		t.Errorf("DisableSortElim plan lost its Sort:\n%s", r2.Plan)
	}
	if fmt.Sprint(orderedFingerprint(r)) != fmt.Sprint(orderedFingerprint(r2)) {
		t.Error("elided-sort order disagrees with explicit sort")
	}

	out, err := db.Explain(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sort elided") {
		t.Errorf("EXPLAIN missing sort-elided annotation:\n%s", out)
	}
}

// TestMergeJoinAndStreamAggAnnotations: forcing strategies shows up in
// EXPLAIN, and the auto picks appear where the inputs arrive ordered.
func TestMergeJoinAndStreamAggAnnotations(t *testing.T) {
	db := sharedDB(t)
	join := `select o_orderkey, l_linenumber from orders join lineitem on l_orderkey = o_orderkey`
	agg := `select l_orderkey, sum(l_quantity) as q from lineitem group by l_orderkey`

	cfg := DefaultConfig()
	cfg.JoinStrategy = "merge"
	out, err := db.Explain(join, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join=merge") {
		t.Errorf("forced merge join missing from EXPLAIN:\n%s", out)
	}

	cfg = DefaultConfig()
	cfg.AggStrategy = "stream"
	out, err = db.Explain(agg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "agg=stream") {
		t.Errorf("forced stream agg missing from EXPLAIN:\n%s", out)
	}
}

// TestOrderStrategyValidation: misspelled strategy knobs error rather
// than silently running auto.
func TestOrderStrategyValidation(t *testing.T) {
	db := sharedDB(t)
	cfg := DefaultConfig()
	cfg.JoinStrategy = "nested-loops"
	if _, err := db.QueryCfg(`select count(*) as n from orders`, cfg); err == nil ||
		!strings.Contains(err.Error(), "JoinStrategy") {
		t.Errorf("bad JoinStrategy: err = %v", err)
	}
	cfg = DefaultConfig()
	cfg.AggStrategy = "sorted"
	if _, err := db.QueryCfg(`select count(*) as n from orders`, cfg); err == nil ||
		!strings.Contains(err.Error(), "AggStrategy") {
		t.Errorf("bad AggStrategy: err = %v", err)
	}
}

// TestOrderKnobsArePlanIdentity: plans compiled under different order
// knobs never alias in the plan cache.
func TestOrderKnobsArePlanIdentity(t *testing.T) {
	a := DefaultConfig()
	b := a
	b.JoinStrategy = "merge"
	c := a
	c.AggStrategy = "stream"
	d := a
	d.DisableSortElim = true
	keys := map[string]string{}
	for name, cfg := range map[string]Config{"base": a, "merge": b, "stream": c, "noelim": d} {
		k := cfg.planKey()
		for other, ok := range keys {
			if ok == k {
				t.Errorf("planKey collision between %s and %s: %q", name, other, k)
			}
		}
		keys[name] = k
	}
	// "auto" and "" are the same strategy and must share a key.
	e := a
	e.JoinStrategy = "auto"
	e.AggStrategy = "auto"
	if e.planKey() != a.planKey() {
		t.Error("auto and empty strategy produced different plan keys")
	}
}
