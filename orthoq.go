// Package orthoq is a SQL query engine built around the subquery and
// aggregation optimizations of Galindo-Legaria & Joshi, "Orthogonal
// Optimization of Subqueries and Aggregation" (SIGMOD 2001):
// Apply-based algebraic decorrelation (query flattening), outerjoin
// simplification, GroupBy reordering around join variants,
// LocalGroupBy splitting, and SegmentApply segmented execution —
// composed as independent primitives inside a cost-based optimizer.
//
// Typical use:
//
//	db, _ := orthoq.OpenTPCH(0.01, 1)
//	rows, _ := db.Query(`select c_custkey from customer
//	    where 1000000 < (select sum(o_totalprice) from orders
//	                     where o_custkey = c_custkey)`)
//	fmt.Println(rows.Table())
//
// Config toggles each optimization independently, which is how the
// benchmark harness reproduces the paper's evaluation.
package orthoq

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orthoq/internal/algebra"
	"orthoq/internal/algebrize"
	"orthoq/internal/core"
	"orthoq/internal/exec"
	"orthoq/internal/exec/faultinject"
	"orthoq/internal/obs"
	"orthoq/internal/opt"
	"orthoq/internal/plancache"
	"orthoq/internal/resultcache"
	"orthoq/internal/sql/ast"
	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/parser"
	"orthoq/internal/sql/types"
	"orthoq/internal/stats"
	"orthoq/internal/storage"
	"orthoq/internal/tpch"
	"orthoq/internal/wal"
)

// Typed execution errors, re-exported from the engine. Classify
// failures with errors.Is: every governance abort — row budget, memory
// budget with spilling disabled, cancellation, deadline, contained
// operator panic — wraps exactly one of these sentinels.
var (
	ErrRowBudget = exec.ErrRowBudget
	ErrMemBudget = exec.ErrMemBudget
	ErrCanceled  = exec.ErrCanceled
	ErrTimeout   = exec.ErrTimeout
	ErrInternal  = exec.ErrInternal
)

// InternalError is a contained operator panic (wraps ErrInternal); it
// carries the operator name and plan fingerprint for bug reports.
type InternalError = exec.InternalError

// Value is a SQL datum (NULL-aware tagged union).
type Value = types.Datum

// Row is one result tuple.
type Row = types.Row

// Catalog re-exports the schema catalog type for embedders.
type Catalog = catalog.Catalog

// Table re-exports the table schema type.
type Table = catalog.Table

// Column re-exports the column schema type.
type Column = catalog.Column

// Index re-exports the index schema type.
type Index = catalog.Index

// Config selects which of the paper's optimizations run. The zero
// value disables everything (correlated, unoptimized execution); use
// DefaultConfig for the full technique set.
type Config struct {
	// Decorrelate removes correlations during normalization (§2,
	// "query flattening"). Off = the correlated strategy.
	Decorrelate bool
	// RemoveClass2 also removes class-2 subqueries (identities (5)-(7),
	// duplicating common subexpressions; §2.5).
	RemoveClass2 bool
	// SimplifyOuterJoins converts outerjoins to joins under
	// null-rejecting predicates, including rejection derived through
	// GroupBy (§1.2).
	SimplifyOuterJoins bool
	// CostBased enables the transformation-rule optimizer (§4). Off =
	// execute the normalized plan as-is.
	CostBased bool
	// GroupByReorder enables §3.1/3.2 GroupBy reordering rules.
	GroupByReorder bool
	// LocalAgg enables §3.3 LocalGroupBy splitting and pushdown.
	LocalAgg bool
	// SegmentApply enables §3.4 segmented execution rules.
	SegmentApply bool
	// JoinReorder enables join commutativity/associativity.
	JoinReorder bool
	// CorrelatedReintro lets the optimizer turn joins back into
	// index-lookup Apply plans when cheaper (§4).
	CorrelatedReintro bool
	// MaxSteps caps optimizer search expansions (0 = default).
	MaxSteps int
	// Parallelism is the worker count for morsel-driven parallel
	// execution of eligible scan/join/aggregation subtrees. 0 or 1
	// executes serially (the default, preserving deterministic row
	// order); higher values may return rows in a different order than
	// serial execution (the bag of rows is identical).
	Parallelism int
	// DisableBatch forces row-at-a-time execution with interpreted
	// expression evaluation instead of the default batch-at-a-time
	// path with compiled expressions. Results are identical; this is
	// the baseline knob for the batch benchmarks and equivalence
	// tests.
	DisableBatch bool
	// ApplyStrategy overrides how correlated Apply operators execute
	// their inner side: "sequential" re-opens per outer row,
	// "batched" deduplicates correlation bindings per batch and
	// executes once per distinct binding, "parallel" additionally
	// spreads distinct bindings over a worker pool. "" or "auto"
	// (the default) picks per Apply from estimated cardinalities.
	// Results are identical across strategies; only speed differs.
	ApplyStrategy string
	// JoinStrategy overrides the equi-join algorithm: "hash" always
	// builds a hash table, "merge" always merge-joins (sorting
	// unsorted inputs first). "" or "auto" (the default) merge-joins
	// only when both inputs already arrive sorted on the keys. The
	// result bag is identical across strategies.
	JoinStrategy string
	// AggStrategy overrides the grouping algorithm: "hash" always
	// hash-aggregates, "stream" always aggregates streaming (sorting
	// ungrouped input first). "" or "auto" (the default) streams only
	// when the input already arrives grouped. The result bag is
	// identical across strategies.
	AggStrategy string
	// DisableSortElim turns off every order-property optimization:
	// the optimizer stops generating ordered-scan / merge-join /
	// streaming-aggregation variants, and the executor ignores order
	// metadata (explicit sorts run even where an ordered index could
	// satisfy them). The baseline knob for the order benchmarks.
	DisableSortElim bool
	// PlanCache configures the parameterized plan cache consulted by
	// Query/QueryCfg. The zero value enables it with defaults.
	PlanCache PlanCacheConfig
	// ResultCache configures the semantic result cache: whole-result
	// reuse keyed on (plan fingerprint, bound values, table versions)
	// with single-flight deduplication, plus shared sub-expression
	// materialization. The zero value disables it (see
	// ResultCacheConfig); enablement is run state, never part of the
	// plan identity.
	ResultCache ResultCacheConfig
	// DisableRules suppresses individual rewrite rules by canonical
	// name (see RuleNames): normalization identities stay correlated,
	// cost-based transformations are never generated. Unlike the
	// observability knobs below, disabled rules change the compiled
	// plan, so they are part of the plan-cache identity.
	DisableRules []string

	// Trace enables per-operator span collection: the result's Spans()
	// method returns the operator span tree (rows, opens, batches,
	// inclusive/self wall time, memory, spills, parallel activity per
	// operator). Tracing is run state — a cached plan is shared by
	// traced and untraced runs — and costs one map insert plus two
	// time.Now calls per operator call when on, nothing when off.
	Trace bool
	// QueryLog, when non-nil, receives one JSON line per completed
	// query execution (success or failure): fingerprint, cache status,
	// rewrite rules applied, duration, rows, peak memory, spills,
	// parallel activity, and error class. Writes are serialized per DB
	// handle, each line in a single Write call. Run state.
	QueryLog io.Writer

	// Session, when non-empty, labels this run's query-log record and
	// metrics with a session identifier. Set by servers embedding the
	// engine (one label per wire session); pure run state, never part
	// of the plan identity.
	Session string
	// Queued records how long this run waited in an admission queue
	// before execution; it is surfaced as queued_us in the query log.
	// Set by servers embedding the engine; run state.
	Queued time.Duration

	// Timeout, when positive, bounds each query execution; expiry
	// surfaces as an error wrapping ErrTimeout. Combine with
	// QueryContext for caller-driven cancellation.
	Timeout time.Duration
	// MemBudget, when positive, caps the bytes of operator working
	// state (hash-join builds, aggregation tables, sort buffers,
	// exchange buffers) across all workers of a query. Hash joins and
	// hash aggregations degrade to partitioned temp-file (Grace-style)
	// execution at the cap; results are identical, only speed differs.
	MemBudget int64
	// DisableSpill makes MemBudget a hard cap: instead of spilling, an
	// operator that would exceed it aborts with ErrMemBudget.
	DisableSpill bool
	// SpillDir is the directory for spill partition files ("" = the
	// system temp directory). Files are always removed by the end of
	// the run, error or not.
	SpillDir string
	// RowBudget, when positive, aborts execution after this many
	// operator-row productions with ErrRowBudget — a guard against
	// runaway plans.
	RowBudget int64

	// faults installs the test-only fault-injection harness; it is
	// deliberately unexported (set by tests in this package) and, like
	// the other run-time knobs above, is not part of the plan identity.
	faults *faultinject.Injector
}

// runOpts carries the per-run governance knobs. They are execution
// state, not plan identity: a cached plan compiled once is shared by
// runs with different budgets, timeouts, and fault rules, so none of
// these may live on prepared or appear in planKey.
type runOpts struct {
	ctx          context.Context
	timeout      time.Duration
	memBudget    int64
	disableSpill bool
	spillDir     string
	rowBudget    int64
	faults       *faultinject.Injector
	trace        bool
	queryLog     io.Writer
	session      string
	queued       time.Duration
	snap         *storage.Snapshot

	// Result-cache arming (withResultCache): the cache instance, the
	// sub-plan toggle, and the plan-affecting config fragment of the
	// result key. nil rcache = result caching off for this run.
	rcache   *resultcache.Cache
	rcSub    bool
	rcCfgKey string
}

func (c Config) execOpts(ctx context.Context) runOpts {
	return runOpts{
		ctx:          ctx,
		timeout:      c.Timeout,
		memBudget:    c.MemBudget,
		disableSpill: c.DisableSpill,
		spillDir:     c.SpillDir,
		rowBudget:    c.RowBudget,
		faults:       c.faults,
		trace:        c.Trace,
		queryLog:     c.QueryLog,
		session:      c.Session,
		queued:       c.Queued,
	}
}

// PlanCacheConfig sizes the per-DB plan cache. The cache is created on
// first cached query; Size/Bytes from later Configs are ignored once it
// exists.
type PlanCacheConfig struct {
	// Size caps cached plans (0 = default 256).
	Size int
	// Bytes caps the approximate plan footprint (0 = default 64 MiB).
	Bytes int64
	// Disabled bypasses the cache entirely for queries run under this
	// Config.
	Disabled bool
}

// planKey serializes the Config knobs that influence the compiled plan
// (or its execution strategy) into the cache key, so plans compiled
// under different configurations never alias.
func (c Config) planKey() string {
	key := fmt.Sprintf("%t%t%t%t%t%t%t%t%t%t%t|%d|%d|%s|%s|%s",
		c.Decorrelate, c.RemoveClass2, c.SimplifyOuterJoins, c.CostBased,
		c.GroupByReorder, c.LocalAgg, c.SegmentApply, c.JoinReorder,
		c.CorrelatedReintro, c.DisableBatch, c.DisableSortElim,
		c.MaxSteps, c.Parallelism,
		c.normApplyStrategy(), c.normJoinStrategy(), c.normAggStrategy())
	if len(c.DisableRules) > 0 {
		// Sorted so the key is order-insensitive; Trace/QueryLog are
		// deliberately absent — observability is run state.
		d := append([]string(nil), c.DisableRules...)
		sort.Strings(d)
		key += "|" + strings.Join(d, ",")
	}
	return key
}

// applyStrategy validates the ApplyStrategy knob and normalizes
// "auto" to the empty default.
func (c Config) applyStrategy() (string, error) {
	switch c.ApplyStrategy {
	case "", "auto":
		return "", nil
	case "sequential", "batched", "parallel":
		return c.ApplyStrategy, nil
	}
	return "", fmt.Errorf("orthoq: unknown ApplyStrategy %q (want auto, sequential, batched, or parallel)", c.ApplyStrategy)
}

// normApplyStrategy is applyStrategy for cache-key purposes: invalid
// values keep their spelling (they never reach the cache — prepare
// rejects them first).
func (c Config) normApplyStrategy() string {
	s, err := c.applyStrategy()
	if err != nil {
		return c.ApplyStrategy
	}
	return s
}

// joinStrategy validates the JoinStrategy knob and normalizes "auto"
// to the empty default.
func (c Config) joinStrategy() (string, error) {
	switch c.JoinStrategy {
	case "", "auto":
		return "", nil
	case "hash", "merge":
		return c.JoinStrategy, nil
	}
	return "", fmt.Errorf("orthoq: unknown JoinStrategy %q (want auto, hash, or merge)", c.JoinStrategy)
}

func (c Config) normJoinStrategy() string {
	s, err := c.joinStrategy()
	if err != nil {
		return c.JoinStrategy
	}
	return s
}

// aggStrategy validates the AggStrategy knob and normalizes "auto" to
// the empty default.
func (c Config) aggStrategy() (string, error) {
	switch c.AggStrategy {
	case "", "auto":
		return "", nil
	case "hash", "stream":
		return c.AggStrategy, nil
	}
	return "", fmt.Errorf("orthoq: unknown AggStrategy %q (want auto, hash, or stream)", c.AggStrategy)
}

func (c Config) normAggStrategy() string {
	s, err := c.aggStrategy()
	if err != nil {
		return c.AggStrategy
	}
	return s
}

// RuleNames lists the canonical names of every individually disableable
// rewrite rule: the normalization identities (Apply removal, outerjoin
// simplification) followed by the cost-based transformation rules.
func RuleNames() []string {
	return append(core.NormRuleNames(), opt.RuleNames()...)
}

// ruleSet turns a rule-name list into the lookup map the lower layers
// use.
func ruleSet(names []string) map[string]bool {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// DefaultConfig enables the paper's full technique set.
func DefaultConfig() Config {
	return Config{
		Decorrelate:        true,
		SimplifyOuterJoins: true,
		CostBased:          true,
		GroupByReorder:     true,
		LocalAgg:           true,
		SegmentApply:       true,
		JoinReorder:        true,
		CorrelatedReintro:  true,
	}
}

func (c Config) normOptions() core.Options {
	return core.Options{
		RemoveClass2:   c.RemoveClass2,
		KeepCorrelated: !c.Decorrelate,
		KeepOuterJoins: !c.SimplifyOuterJoins,
		DisableRules:   ruleSet(c.DisableRules),
	}
}

func (c Config) optConfig() opt.Config {
	return opt.Config{
		Norm:                     c.normOptions(),
		DisableGroupByReorder:    !c.GroupByReorder,
		DisableLocalAgg:          !c.LocalAgg,
		DisableSegmentApply:      !c.SegmentApply,
		DisableJoinReorder:       !c.JoinReorder,
		DisableCorrelatedReintro: !c.CorrelatedReintro,
		DisableOrderOpt:          c.DisableSortElim,
		DisableRules:             ruleSet(c.DisableRules),
		MaxSteps:                 c.MaxSteps,
	}
}

// DB is a database handle: schema, stored data, and statistics. All
// methods are safe for concurrent use.
type DB struct {
	store *storage.Store
	// statsv holds the current statistics collection; swapped
	// atomically by Analyze so concurrent query compilation and
	// execution never observe a torn update.
	statsv atomic.Pointer[stats.Collection]
	// epoch versions the catalog + statistics. Analyze, CreateTable
	// and sufficient Insert-driven drift bump it; plans cached (or
	// prepared) under an older epoch are stale.
	epoch atomic.Uint64
	// drift counts rows inserted since the last Analyze; analyzedRows
	// is the total row count the last Analyze saw. When drift exceeds
	// a fraction of analyzedRows the epoch is bumped so cached plans
	// re-optimize against reality.
	drift        atomic.Int64
	analyzedRows atomic.Int64

	cacheMu sync.Mutex
	cache   *plancache.Cache

	// rcache is the semantic result cache, created on first run under a
	// Config with ResultCache.Enabled (see resultcache.go).
	rcMu   sync.Mutex
	rcache *resultcache.Cache
	// disabledBypasses counts cache bypasses taken before/without a
	// cache instance (PlanCache.Disabled configs).
	disabledBypasses atomic.Uint64

	// metrics is the engine-wide observability registry; every
	// execution path folds into it with a few atomic adds. Snapshot via
	// Metrics().
	metrics obs.Metrics
	// wal and walMetrics are set by OpenDurable: the write-ahead-log
	// manager journaling every mutation, and its durability counters.
	// Both nil for in-memory handles.
	wal        *wal.Manager
	walMetrics *obs.WALMetrics
	// logMu serializes query-log writes: one lock per handle covers
	// every Config.QueryLog writer, so interleaved runs with different
	// writers still produce intact lines even when those writers alias
	// the same underlying stream.
	logMu sync.Mutex
}

// statsNow returns the current statistics collection.
func (db *DB) statsNow() *stats.Collection { return db.statsv.Load() }

// Open wraps an existing store.
func Open(store *storage.Store) *DB {
	db := &DB{store: store}
	db.statsv.Store(stats.Collect(store))
	db.analyzedRows.Store(totalRows(db.statsNow(), store))
	// Expose engine counters on the process debug endpoint. First
	// handle wins the name; additional handles keep their Metrics()
	// accessor but are not re-published.
	obs.Publish("orthoq", &db.metrics)
	return db
}

// Span is a node of the per-operator span tree returned by
// Rows.Spans; the alias lets callers name the type (e.g. in Walk
// closures) without reaching into internal packages.
type Span = obs.Span

// MetricsSnapshot is the point-in-time counter copy returned by
// DB.Metrics.
type MetricsSnapshot = obs.Snapshot

// QueryRecord is the schema of one Config.QueryLog line, exported so
// log consumers can unmarshal records by name.
type QueryRecord = obs.QueryRecord

// Metrics snapshots the engine-wide observability counters: queries
// run and failed (classified), rows returned, execution time histogram,
// spills, peak memory high-water, morsel-driven parallelism activity,
// and plan-cache effectiveness. All counters are monotonic since Open,
// so callers diff two snapshots to meter an interval.
func (db *DB) Metrics() MetricsSnapshot {
	s := db.metrics.Snapshot()
	cs := db.CacheStats()
	s.CacheHits = cs.Hits
	s.CacheMisses = cs.Misses
	s.CacheBypasses = cs.Bypasses
	s.CacheEvictions = cs.Evictions
	db.rcMu.Lock()
	rc := db.rcache
	db.rcMu.Unlock()
	if rc != nil {
		rs := rc.CacheStats()
		s.ResultCache = &obs.ResultCacheSnapshot{
			Hits:          rs.Hits,
			Misses:        rs.Misses,
			Shared:        rs.Shared,
			SubHits:       rs.SubHits,
			SubMisses:     rs.SubMisses,
			Inserts:       rs.Inserts,
			Rejected:      rs.Rejected,
			Evictions:     rs.Evictions,
			Invalidations: rs.Invalidations,
			Entries:       rs.Entries,
			Bytes:         rs.Bytes,
		}
	}
	if db.walMetrics != nil {
		ws := db.walMetrics.Snapshot()
		s.WAL = &ws
	}
	return s
}

func totalRows(sc *stats.Collection, store *storage.Store) int64 {
	var n int64
	for _, schema := range store.Catalog.Tables() {
		if ts := sc.Table(schema.Name); ts != nil {
			n += ts.RowCount
		}
	}
	return n
}

// OpenTPCH generates a TPC-H database at the given scale factor with
// deterministic contents for the seed, builds indexes, and collects
// statistics.
func OpenTPCH(scaleFactor float64, seed int64) (*DB, error) {
	st, err := tpch.Generate(scaleFactor, seed)
	if err != nil {
		return nil, err
	}
	return Open(st), nil
}

// NewMemory creates an empty database with a fresh catalog; create
// tables with CreateTable and load rows with Insert.
func NewMemory() *DB {
	return Open(storage.New(catalog.New()))
}

// CreateTable registers a table schema and allocates storage. The DDL
// bumps the epoch, invalidating cached plans (new tables change name
// resolution and therefore potentially any shape).
func (db *DB) CreateTable(t *Table) error {
	_, err := db.store.CreateTable(t)
	if err == nil {
		db.epoch.Add(1)
	}
	return err
}

// Insert adds rows to a table. Call Analyze after bulk loads. Inserts
// accumulate a drift counter; once drift exceeds max(64, 12.5% of the
// rows last analyzed) the epoch is bumped so cached plans re-optimize
// rather than running against badly stale cardinalities.
//
// The whole batch publishes atomically: a concurrent reader (or
// snapshot) sees either none or all of the rows, and the drift
// accounting plus any stats-epoch bump happen inside the same
// publication step — no window where another writer's publish can
// interleave between the new rows appearing and the epoch moving.
func (db *DB) Insert(table string, rows ...Row) error {
	tbl, ok := db.store.Table(table)
	if !ok {
		return fmt.Errorf("orthoq: unknown table %q", table)
	}
	err := tbl.InsertAllThen(rows, func(int) {
		threshold := db.analyzedRows.Load() / 8
		if threshold < 64 {
			threshold = 64
		}
		if d := db.drift.Add(int64(len(rows))); d >= threshold {
			db.drift.Add(-d)
			db.epoch.Add(1)
		}
	})
	if err == nil {
		// GC cached results keyed on this table's now-superseded
		// versions. Correctness does not depend on this: the publish
		// above already minted a new version ID, so stale keys can never
		// match again.
		db.invalidateResultCache(table)
	}
	return err
}

// Analyze rebuilds indexes and statistics; run it after loading data.
// It bumps the epoch: cached plans and prepared statements compiled
// against the old statistics are stale afterwards (see Stmt).
func (db *DB) Analyze() {
	for _, schema := range db.store.Catalog.Tables() {
		if tbl, ok := db.store.Table(schema.Name); ok {
			tbl.BuildIndexes()
		}
	}
	sc := stats.Collect(db.store)
	db.statsv.Store(sc)
	db.analyzedRows.Store(totalRows(sc, db.store))
	db.drift.Store(0)
	db.epoch.Add(1)
	// Journal the epoch bump so the log stays a complete mutation
	// history (recovery re-runs Analyze regardless; a dead log only
	// costs the informational record).
	if db.wal != nil {
		_, _ = db.wal.LogEpoch()
	}
	// BuildIndexes republished every table with fresh version IDs, so
	// the entire result cache just became unreachable; reclaim it now.
	db.purgeResultCache()
}

// planCache returns the cache, creating it from cfg's sizing on first
// use.
func (db *DB) planCache(cfg Config) *plancache.Cache {
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	if db.cache == nil {
		db.cache = plancache.New(int64(cfg.PlanCache.Size), cfg.PlanCache.Bytes)
	}
	return db.cache
}

// CacheStats reports plan-cache effectiveness counters (hits, misses,
// evictions, epoch invalidations, bypasses, cached plans and their
// approximate bytes).
func (db *DB) CacheStats() plancache.Stats {
	db.cacheMu.Lock()
	c := db.cache
	db.cacheMu.Unlock()
	var s plancache.Stats
	if c != nil {
		s = c.CacheStats()
	}
	s.Bypasses += db.disabledBypasses.Load()
	return s
}

// Catalog exposes the schema catalog.
func (db *DB) Catalog() *Catalog { return db.store.Catalog }

// TableRowCount returns the row count of the named table's currently
// published version (false for unknown tables).
func (db *DB) TableRowCount(name string) (int, bool) {
	tbl, ok := db.store.Table(name)
	if !ok {
		return 0, false
	}
	return tbl.Version().RowCount(), true
}

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    []Row
	// Plan is the executed plan rendered as text.
	Plan string
	// Elapsed is the pure execution time (compile excluded).
	Elapsed time.Duration
	// OptimizerSteps counts plans explored during optimization.
	OptimizerSteps int
	// EstimatedCost is the cost model's value for the chosen plan.
	EstimatedCost float64
	// Trace is the per-operator execution statistics rendering; only
	// set by QueryAnalyze.
	Trace string
	// Cache reports how the caches served this query: "hit" (reused a
	// cached plan, re-binding literals), "miss" (compiled and cached),
	// "bypass" (plan cache disabled or shape uncacheable), or "result"
	// (the semantic result cache returned the materialized result —
	// execution was skipped entirely, or shared with a concurrent
	// identical query via single-flight).
	Cache string
	// PeakMemBytes is the high-water mark of accounted operator working
	// memory (hash tables, sort buffers, exchange buffers) during
	// execution.
	PeakMemBytes int64
	// Spills counts spill partition files written during execution
	// (non-zero only when MemBudget forced operators to disk).
	Spills int64
	// Workers and Morsels report morsel-driven parallel activity
	// (goroutines spawned, driver-scan morsels dispatched).
	Workers int64
	Morsels int64
	// Rules lists the rewrite rules that shaped the plan, in firing
	// order, deduplicated: normalization identities first, then the
	// cost-based transformation path of the winning plan.
	Rules []string

	// spans is the operator span tree; set when Config.Trace was on
	// (or via QueryAnalyze).
	spans *obs.Span
}

// Spans returns the per-operator span tree of a traced run (Config.Trace
// or QueryAnalyze): per operator, rows/opens/batches, inclusive (Busy)
// and exclusive (Self) wall time, memory, spills, and — at a parallel
// exchange — workers, morsels, and cumulative worker time. Returns nil
// when the run was not traced.
func (r *Rows) Spans() *Span { return r.spans }

// Table renders the result as an aligned text table.
func (r *Rows) Table() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, 0, len(r.Data)+1)
	cells = append(cells, r.Columns)
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Data {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for ri, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Stmt is a compiled, reusable query plan.
//
// Staleness contract: the plan is compiled against the catalog and
// statistics as of Prepare and is never recompiled implicitly. After
// Analyze, CreateTable, or heavy Insert traffic bump the DB epoch, Run
// still executes the old plan — results stay correct (data is read live
// at execution), but the plan choice may no longer be cost-optimal, and
// tables created after Prepare are invisible to it. Stale reports this
// condition; re-Prepare (or use Query, whose cache re-optimizes on
// epoch change) to pick up the new state.
type Stmt struct {
	db    *DB
	prep  *prepared
	cfg   Config
	epoch uint64
}

// Prepare compiles SQL under cfg once; Run executes it repeatedly
// without re-optimizing. The returned Stmt is safe for concurrent use:
// the prepared state is read-only at run time and every Run builds a
// private execution context. cfg's governance knobs (Timeout,
// MemBudget, ...) apply to every Run; a run that fails — canceled,
// over budget, even a contained panic — leaves the Stmt fully
// reusable.
func (db *DB) Prepare(sql string, cfg Config) (*Stmt, error) {
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, prep: prep, cfg: cfg, epoch: db.epoch.Load()}, nil
}

// Run executes the prepared plan.
func (s *Stmt) Run() (*Rows, error) {
	return s.prep.runCached(s.db, nil, "", s.db.withResultCache(s.cfg, s.cfg.execOpts(nil)))
}

// RunContext executes the prepared plan under a caller-supplied
// context: cancellation surfaces as an error wrapping ErrCanceled,
// deadline expiry as ErrTimeout.
func (s *Stmt) RunContext(ctx context.Context) (*Rows, error) {
	return s.prep.runCached(s.db, nil, "", s.db.withResultCache(s.cfg, s.cfg.execOpts(ctx)))
}

// RunSnapshot executes the prepared plan reading from a pinned
// snapshot (see DB.Snapshot); a nil snap behaves like RunContext.
// With the result cache enabled the key is built from the snapshot's
// own table versions, so an old pinned snapshot can never be served a
// result computed over newer data (and vice versa) — it version-
// matches or misses.
func (s *Stmt) RunSnapshot(ctx context.Context, snap *Snapshot) (*Rows, error) {
	opts := s.cfg.execOpts(ctx)
	if snap != nil {
		opts.snap = snap.sn
	}
	return s.prep.runCached(s.db, nil, "", s.db.withResultCache(s.cfg, opts))
}

// Stale reports whether the database epoch moved since Prepare
// (statistics refresh, DDL, or significant insert drift), i.e. whether
// the plan was chosen under assumptions that no longer hold. Running a
// stale Stmt is permitted and returns correct results over current
// data; only plan quality is affected.
func (s *Stmt) Stale() bool {
	return s.epoch != s.db.epoch.Load()
}

// Plan returns the compiled plan text.
func (s *Stmt) Plan() string {
	return algebra.FormatRel(s.prep.md, s.prep.plan)
}

// Query runs SQL with the full technique set.
func (db *DB) Query(sql string) (*Rows, error) {
	return db.QueryCfg(sql, DefaultConfig())
}

// QueryContext is Query under a caller-supplied context: cancellation
// surfaces as an error wrapping ErrCanceled, deadline expiry as
// ErrTimeout.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	return db.QueryCfgContext(ctx, sql, DefaultConfig())
}

// QueryCfg runs SQL under an explicit optimization configuration,
// consulting the plan cache unless cfg.PlanCache.Disabled: repeated
// queries differing only in literal values reuse the optimized plan,
// skipping parse/normalize/optimize entirely on a hit.
func (db *DB) QueryCfg(sql string, cfg Config) (*Rows, error) {
	return db.QueryCfgContext(nil, sql, cfg)
}

// QueryCfgContext is QueryCfg under a caller-supplied context. The
// context and cfg's governance knobs are pure run state: they never
// affect the cached plan or its key, so the same cached plan serves
// runs with different budgets and deadlines.
func (db *DB) QueryCfgContext(goCtx context.Context, sql string, cfg Config) (*Rows, error) {
	return db.queryOpts(sql, cfg, cfg.execOpts(goCtx))
}

// Snapshot is a pinned, consistent point-in-time view of every table:
// queries run against it see the data exactly as of DB.Snapshot(),
// regardless of concurrent Insert/CreateTable/Analyze traffic
// (repeatable reads). Snapshots are cheap — one pointer per table, no
// copying — and need no explicit release.
type Snapshot struct {
	sn *storage.Snapshot
}

// Snapshot pins the current version of every table. It is the read
// side of the engine's lightweight transactions: take one at BEGIN,
// run any number of queries against it, drop it at COMMIT/ROLLBACK.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{sn: db.store.Snapshot()}
}

// QuerySnapshot runs SQL under cfg reading from the pinned snapshot
// instead of the live table versions. Plan compilation (and the plan
// cache) is shared with the live path — only data access is pinned. A
// nil snap behaves exactly like QueryCfgContext.
func (db *DB) QuerySnapshot(goCtx context.Context, sql string, cfg Config, snap *Snapshot) (*Rows, error) {
	opts := cfg.execOpts(goCtx)
	if snap != nil {
		opts.snap = snap.sn
	}
	return db.queryOpts(sql, cfg, opts)
}

// queryOpts is the shared cached-query path behind QueryCfgContext and
// QuerySnapshot.
func (db *DB) queryOpts(sql string, cfg Config, opts runOpts) (*Rows, error) {
	// The result cache is orthogonal to the plan cache: the plan cache
	// saves compilation, the result cache saves execution, and every
	// branch below — including plan-cache bypasses — may still serve or
	// populate cached results.
	opts = db.withResultCache(cfg, opts)
	if cfg.PlanCache.Disabled {
		db.disabledBypasses.Add(1)
		prep, err := db.prepare(sql, cfg)
		if err != nil {
			return nil, err
		}
		return prep.runCached(db, nil, "bypass", opts)
	}
	c := db.planCache(cfg)
	shape, lits, err := plancache.Fingerprint(sql)
	if err != nil {
		// Not tokenizable: run uncached so the parser reports the
		// canonical error.
		c.CountBypass()
		prep, perr := db.prepare(sql, cfg)
		if perr != nil {
			return nil, perr
		}
		return prep.runCached(db, nil, "bypass", opts)
	}
	key := shape + "\x00" + cfg.planKey()
	epoch := db.epoch.Load()
	if fam := c.Family(key, epoch); fam != nil {
		if fam.Uncacheable {
			c.CountBypass()
			prep, perr := db.prepare(sql, cfg)
			if perr != nil {
				return nil, perr
			}
			return prep.runCached(db, nil, "bypass", opts)
		}
		if params, vkey, ok := plancache.Bind(fam.Positions, lits); ok {
			if v := fam.Variant(vkey); v != nil {
				bkey := plancache.BucketKey(v.Descs, db.statsNow(), params)
				if p, found := v.Plan(bkey); found {
					c.CountHit()
					return p.(*prepared).runCached(db, params, "hit", opts)
				}
			}
			// Known shape, new variant or bucket: compile with the new
			// values and add the plan to the family.
		} else {
			// A literal failed to convert under the recorded layout
			// (overflow, malformed date): compile from scratch for the
			// canonical error or result.
			c.CountBypass()
			prep, perr := db.prepare(sql, cfg)
			if perr != nil {
				return nil, perr
			}
			return prep.runCached(db, nil, "bypass", opts)
		}
	}
	c.CountMiss()
	return db.compileStoreRun(sql, cfg, c, key, epoch, lits, opts)
}

// compileStoreRun is the cache-miss path: parse, parameterize, compile
// against parameter slots, store the plan per selectivity bucket, and
// run. Any parameterization trouble downgrades the shape to
// uncacheable and falls back to the classic pipeline — never to an
// error the uncached path would not also produce.
func (db *DB) compileStoreRun(sql string, cfg Config, c *plancache.Cache,
	key string, epoch uint64, lits []plancache.Lit, opts runOpts) (*Rows, error) {

	uncacheable := func() (*Rows, error) {
		c.StoreUncacheable(key, epoch)
		prep, err := db.prepare(sql, cfg)
		if err != nil {
			return nil, err
		}
		return prep.runCached(db, nil, "miss", opts)
	}

	q, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	pz := plancache.Parameterize(q)
	if !pz.OK || !plancache.Aligned(pz, lits) {
		return uncacheable()
	}
	prep, err := db.prepareAST(q, cfg, pz.Params)
	if err != nil {
		// Parameterization must never surface errors of its own; the
		// fallback compiles the pristine text and reports its result.
		return uncacheable()
	}
	sc := db.statsNow()
	descs := plancache.Descriptors(prep.md, sc, prep.plan)
	vkey := plancache.VariantKey(pz.Positions, pz.Texts, pz.Params)
	c.StorePlan(key, epoch, pz.Positions, vkey, descs, prep,
		approxPlanBytes(prep), func(authoritative []plancache.Descriptor) string {
			return plancache.BucketKey(authoritative, sc, pz.Params)
		})
	return prep.runCached(db, pz.Params, "miss", opts)
}

// approxPlanBytes estimates a prepared plan's memory footprint for the
// cache's byte cap: a flat per-node charge over relational and scalar
// nodes plus metadata overhead.
func approxPlanBytes(p *prepared) int64 {
	nodes := int64(0)
	algebra.VisitRel(p.plan, func(r algebra.Rel) bool {
		nodes++
		for _, s := range algebra.RelScalars(r) {
			algebra.VisitScalar(s, func(algebra.Scalar) { nodes++ })
		}
		return true
	})
	return 256 + nodes*160 + int64(p.md.NumColumns())*64
}

// prepared is a compiled query.
type prepared struct {
	md       *algebra.Metadata
	plan     algebra.Rel
	outCols  []algebra.ColID
	outNames []string
	steps    int
	cost     float64
	par      int
	noBatch  bool
	// applyStrat is the normalized ApplyStrategy override ("" = auto).
	applyStrat string
	// joinStrat / aggStrat are the normalized JoinStrategy and
	// AggStrategy overrides ("" = auto); noOrderOpt pins execution to
	// order-oblivious operator choices.
	joinStrat  string
	aggStrat   string
	noOrderOpt bool
	// rules records the rewrite rules that shaped the plan (see
	// Rows.Rules). Immutable after prepare.
	rules []string
	// fingerprint identifies the plan in contained-panic reports
	// (FNV-64a over the plan rendering).
	fingerprint string
}

// planFingerprint hashes the plan text into a short stable identifier.
func planFingerprint(md *algebra.Metadata, rel algebra.Rel) string {
	h := fnv.New64a()
	h.Write([]byte(algebra.FormatRel(md, rel)))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (db *DB) prepare(sql string, cfg Config) (*prepared, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.prepareAST(q, cfg, nil)
}

// prepareAST compiles a parsed (possibly parameterized) query:
// algebrize, normalize, and cost-based optimization. params supplies
// sniffed values for ast.Param slots.
func (db *DB) prepareAST(q ast.Query, cfg Config, params []types.Datum) (*prepared, error) {
	strat, err := cfg.applyStrategy()
	if err != nil {
		return nil, err
	}
	jstrat, err := cfg.joinStrategy()
	if err != nil {
		return nil, err
	}
	astrat, err := cfg.aggStrategy()
	if err != nil {
		return nil, err
	}
	md := algebra.NewMetadata()
	res, err := algebrize.BuildWithParams(db.store.Catalog, md, q, params)
	if err != nil {
		return nil, err
	}
	var fired []string
	nopts := cfg.normOptions()
	nopts.Record = func(rule string) { fired = append(fired, rule) }
	rel, err := core.Normalize(md, res.Rel, nopts)
	if err != nil {
		return nil, err
	}
	p := &prepared{md: md, plan: rel, outCols: res.OutCols, outNames: res.OutNames,
		par: cfg.Parallelism, noBatch: cfg.DisableBatch, applyStrat: strat,
		joinStrat: jstrat, aggStrat: astrat, noOrderOpt: cfg.DisableSortElim}
	if cfg.CostBased {
		o := &opt.Optimizer{Md: md, Cat: db.store.Catalog, Stats: db.statsNow(), Config: cfg.optConfig()}
		r := o.Optimize(rel, correlatedSeed(md, res.Rel, cfg)...)
		p.plan, p.steps, p.cost = r.Plan, r.Explored, r.Cost
		// The correlated seed is a strategy alternative, not a rewrite of
		// the chosen plan, so only the winner's rule path is reported.
		fired = append(fired, r.Rules...)
	}
	p.rules = dedupRules(fired)
	p.fingerprint = planFingerprint(md, p.plan)
	return p, nil
}

// dedupRules keeps the first occurrence of each rule name, preserving
// firing order (a rule that fired fifty times during normalization
// reads once).
func dedupRules(fired []string) []string {
	if len(fired) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(fired))
	out := make([]string, 0, len(fired))
	for _, r := range fired {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// correlatedSeed builds the correlated (Apply) formulation as an
// additional optimizer starting point, so cost-based search considers
// correlated execution strategies alongside the flattened form
// (paper §4).
func correlatedSeed(md *algebra.Metadata, algebrized algebra.Rel, cfg Config) []algebra.Rel {
	if !cfg.CorrelatedReintro || !cfg.Decorrelate {
		return nil
	}
	keep := cfg.normOptions()
	keep.KeepCorrelated = true
	seed, err := core.Normalize(md, algebrized, keep)
	if err != nil {
		return nil
	}
	return []algebra.Rel{seed}
}

func (p *prepared) run(db *DB, params []types.Datum, cacheStatus string, opts runOpts) (*Rows, error) {
	return p.runTraced(db, params, cacheStatus, false, opts)
}

// execContext builds the per-run execution context from the prepared
// plan's execution-strategy knobs (plan identity) and the caller's
// governance knobs (run state). The returned cancel func is non-nil
// when a Timeout installed a deadline.
func (p *prepared) execContext(db *DB, params []types.Datum, opts runOpts) (*exec.Context, context.CancelFunc) {
	ctx := exec.NewContext(db.store, p.md)
	ctx.Stats = db.statsNow()
	ctx.Parallelism = p.par
	ctx.Params = params
	ctx.DisableBatch = p.noBatch
	ctx.ApplyStrategy = p.applyStrat
	ctx.ForceJoin = p.joinStrat
	ctx.ForceAgg = p.aggStrat
	ctx.DisableOrderOpt = p.noOrderOpt
	ctx.RowBudget = opts.rowBudget
	ctx.MemBudget = opts.memBudget
	ctx.DisableSpill = opts.disableSpill
	ctx.SpillDir = opts.spillDir
	ctx.Faults = opts.faults
	ctx.Fingerprint = p.fingerprint
	ctx.Snap = opts.snap
	if opts.rcache != nil && opts.rcSub {
		ctx.SubCache = opts.rcache
	}
	goCtx := opts.ctx
	var cancel context.CancelFunc
	if opts.timeout > 0 {
		if goCtx == nil {
			goCtx = context.Background()
		}
		goCtx, cancel = context.WithTimeout(goCtx, opts.timeout)
	}
	ctx.Ctx = goCtx
	return ctx, cancel
}

// runTraced executes the plan. The prepared value is strictly
// read-only here: per-run state (parameter bindings, evaluator,
// tracing, budgets) lives in a fresh exec.Context, which is what makes
// one prepared plan shareable between the cache and concurrent
// Stmt.Run callers.
func (p *prepared) runTraced(db *DB, params []types.Datum, cacheStatus string, trace bool, opts runOpts) (*Rows, error) {
	ctx, cancel := p.execContext(db, params, opts)
	if cancel != nil {
		defer cancel()
	}
	tracing := trace || opts.trace
	if tracing {
		ctx.EnableTrace()
	}
	start := time.Now()
	var out *exec.Result
	var err error
	// CPU-profile samples of this run — including morsel workers, which
	// inherit labels at spawn — carry the plan fingerprint, the same
	// identifier used by the query log and panic reports.
	obs.WithPlanLabel(ctx.Ctx, p.fingerprint, func(context.Context) {
		out, err = exec.Run(ctx, p.plan, p.outCols)
	})
	elapsed := time.Since(start)
	var nrows int64
	if err == nil {
		nrows = int64(len(out.Rows))
	}
	db.noteRun(p, cacheStatus, elapsed, nrows, err,
		ctx.PeakMem(), ctx.Spills(), ctx.WorkersSpawned(), ctx.MorselsDispatched(),
		opts)
	if err != nil {
		return nil, err
	}
	r := &Rows{
		Columns:        append([]string(nil), p.outNames...),
		Data:           out.Rows,
		Plan:           algebra.FormatRel(p.md, p.plan),
		Elapsed:        elapsed,
		OptimizerSteps: p.steps,
		EstimatedCost:  p.cost,
		Cache:          cacheStatus,
		PeakMemBytes:   out.PeakMem,
		Spills:         out.Spills,
		Workers:        out.Workers,
		Morsels:        out.Morsels,
		Rules:          p.rules,
	}
	if tracing {
		r.spans = ctx.Spans(p.plan)
	}
	if trace {
		r.Trace = ctx.FormatTrace(p.plan)
	}
	return r, nil
}

// errClass maps an execution error onto the query-log/metrics taxonomy
// ("" for success).
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrTimeout):
		return obs.ClassTimeout
	case errors.Is(err, ErrCanceled):
		return obs.ClassCanceled
	case errors.Is(err, ErrRowBudget):
		return obs.ClassRowBudget
	case errors.Is(err, ErrMemBudget):
		return obs.ClassMemBudget
	case errors.Is(err, ErrInternal):
		return obs.ClassInternal
	default:
		return obs.ClassOther
	}
}

// noteRun folds one finished execution — success or failure — into the
// engine metrics and, when configured, appends its query-log record.
// Every execution path (Query*, Stmt.Run*, QueryAnalyze, streams at
// Close) funnels through here, which is what keeps DB.Metrics() deltas
// consistent with per-query observations.
func (db *DB) noteRun(p *prepared, cacheStatus string, elapsed time.Duration,
	rows int64, runErr error, peakMem, spills, workers, morsels int64, opts runOpts) {

	logw := opts.queryLog
	class := errClass(runErr)
	db.metrics.RecordRun(elapsed, rows, class)
	db.metrics.NotePeakMem(peakMem)
	if spills > 0 {
		db.metrics.Spills.Add(uint64(spills))
	}
	if workers > 0 {
		db.metrics.WorkersSpawned.Add(uint64(workers))
	}
	if morsels > 0 {
		db.metrics.MorselsDispatched.Add(uint64(morsels))
	}
	if logw == nil {
		return
	}
	rec := obs.QueryRecord{
		Fingerprint:  p.fingerprint,
		Cache:        cacheStatus,
		Session:      opts.session,
		QueuedUS:     opts.queued.Microseconds(),
		Rules:        p.rules,
		DurationUS:   elapsed.Microseconds(),
		Rows:         rows,
		PeakMemBytes: peakMem,
		Spills:       spills,
		Workers:      workers,
		Morsels:      morsels,
		ErrorClass:   class,
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	rec.Now()
	db.logMu.Lock()
	// A failing writer only loses log lines, never the query result.
	_ = rec.Append(logw)
	db.logMu.Unlock()
}

// Stream is an incremental query result: rows are pulled one at a
// time instead of materialized. Close may be called before exhaustion
// — it tears the execution tree down (stopping and draining any
// parallel workers, removing spill files) and is idempotent. A Stream
// must always be Closed.
type Stream struct {
	cu     *exec.Cursor
	cancel context.CancelFunc
	names  []string

	// Result-cache replay: when the stream was served from the result
	// cache, rows come from the pinned entry's materialization (cu is
	// nil) and the entry stays pinned — its bytes accounted — until
	// Close unpins it. Cold streams never populate the cache: they
	// exist for results too large to materialize.
	rc     *resultcache.Cache
	entry  *resultcache.Entry
	replay []Row
	rpos   int

	// Observability: the stream's query-log record and metrics update
	// are emitted once, at Close, when the row count is known. The
	// logged duration spans open-to-Close, which for a stream includes
	// caller think-time between Next calls.
	db      *DB
	prep    *prepared
	opts    runOpts
	start   time.Time
	nrows   int64
	lastErr error
	noted   bool
}

// QueryStream runs SQL under cfg and returns a streaming result. The
// plan cache is not consulted (streams are for large results, where
// execution dominates compilation).
func (db *DB) QueryStream(sql string, cfg Config) (*Stream, error) {
	return db.QueryStreamContext(nil, sql, cfg)
}

// QueryStreamContext is QueryStream under a caller-supplied context;
// canceling it makes the next Next return an error wrapping
// ErrCanceled.
func (db *DB) QueryStreamContext(goCtx context.Context, sql string, cfg Config) (*Stream, error) {
	return db.streamOpts(sql, cfg, cfg.execOpts(goCtx))
}

// QueryStreamSnapshot is QueryStreamContext reading from a pinned
// snapshot: the stream sees the data exactly as of the snapshot even
// if it is consumed slowly while writers publish new versions. A nil
// snap behaves like QueryStreamContext.
func (db *DB) QueryStreamSnapshot(goCtx context.Context, sql string, cfg Config, snap *Snapshot) (*Stream, error) {
	opts := cfg.execOpts(goCtx)
	if snap != nil {
		opts.snap = snap.sn
	}
	return db.streamOpts(sql, cfg, opts)
}

func (db *DB) streamOpts(sql string, cfg Config, opts runOpts) (*Stream, error) {
	opts = db.withResultCache(cfg, opts)
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if opts.rcache != nil {
		if key, _, ok := resultKey(prep, nil, opts); ok {
			if e, found := opts.rcache.Pin(key); found {
				opts.rcache.CountHit()
				cr := e.Val.(*cachedResult)
				return &Stream{rc: opts.rcache, entry: e, replay: cr.rows.Data,
					names: append([]string(nil), prep.outNames...),
					db:    db, prep: prep, opts: opts, start: start}, nil
			}
			opts.rcache.CountMiss()
		}
	}
	ctx, cancel := prep.execContext(db, nil, opts)
	cu, err := exec.RunCursor(ctx, prep.plan, prep.outCols)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		db.noteRun(prep, "bypass", time.Since(start), 0, err,
			ctx.PeakMem(), ctx.Spills(), ctx.WorkersSpawned(), ctx.MorselsDispatched(),
			opts)
		return nil, err
	}
	return &Stream{cu: cu, cancel: cancel,
		names: append([]string(nil), prep.outNames...),
		db:    db, prep: prep, opts: opts, start: start}, nil
}

// Columns returns the result column names.
func (s *Stream) Columns() []string { return s.names }

// Next returns the next row; ok=false at end of stream. After an
// error, Close, or exhaustion it keeps returning ok=false.
func (s *Stream) Next() (Row, bool, error) {
	if s.cu == nil {
		if s.replay == nil || s.rpos >= len(s.replay) {
			return nil, false, nil
		}
		row := s.replay[s.rpos]
		s.rpos++
		s.nrows++
		return row, true, nil
	}
	row, ok, err := s.cu.Next()
	if ok {
		s.nrows++
	}
	if err != nil {
		s.lastErr = err
	}
	return row, ok, err
}

// PeakMemBytes reports the high-water mark of accounted operator
// memory so far (zero for a cache-served stream: nothing executed).
func (s *Stream) PeakMemBytes() int64 {
	if s.cu == nil {
		return 0
	}
	return s.cu.PeakMem()
}

// Spills reports spill partition files written so far.
func (s *Stream) Spills() int64 {
	if s.cu == nil {
		return 0
	}
	return s.cu.Spills()
}

// Close releases all execution resources, then folds the stream into
// the engine metrics and query log (rows actually streamed; a stream
// abandoned mid-result logs what it delivered). Safe to call at any
// point, any number of times.
func (s *Stream) Close() error {
	if s.cu == nil {
		// Cache-served stream: unpin the entry (releasing its accounted
		// bytes if it was evicted or invalidated while we streamed) and
		// log the replay.
		if s.entry != nil {
			s.rc.Unpin(s.entry)
			s.entry, s.replay = nil, nil
		}
		if !s.noted {
			s.noted = true
			s.db.noteRun(s.prep, "result", time.Since(s.start), s.nrows, nil,
				0, 0, 0, 0, s.opts)
		}
		return nil
	}
	err := s.cu.Close()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
	if !s.noted {
		s.noted = true
		s.db.noteRun(s.prep, "bypass", time.Since(s.start), s.nrows, s.lastErr,
			s.cu.PeakMem(), s.cu.Spills(), s.cu.Workers(), s.cu.Morsels(), s.opts)
	}
	return err
}

// QueryAnalyze runs SQL under cfg with per-operator execution
// statistics collected; the result's Trace field holds the annotated
// plan (rows produced, Open counts — correlated execution shows its
// per-row re-opens — and inclusive time per operator).
func (db *DB) QueryAnalyze(sql string, cfg Config) (*Rows, error) {
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return prep.runTraced(db, nil, "bypass", true, cfg.execOpts(nil))
}

// Explain compiles a query under cfg and reports each compilation
// stage: the algebrized tree (§2.1), the normalized/decorrelated tree
// (§2.2–2.3), and the cost-based plan (§3–4).
func (db *DB) Explain(sql string, cfg Config) (string, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	md := algebra.NewMetadata()
	res, err := algebrize.Build(db.store.Catalog, md, q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %s\n", db.cacheStatus(sql, cfg))
	b.WriteString("=== algebrized (mixed scalar/relational tree) ===\n")
	b.WriteString(algebra.FormatRel(md, res.Rel))

	applied, err := core.IntroduceApplies(md, res.Rel)
	if err != nil {
		return "", err
	}
	b.WriteString("\n=== after Apply introduction (mutual recursion removed) ===\n")
	b.WriteString(algebra.FormatRel(md, applied))

	norm, err := core.Normalize(md, res.Rel, cfg.normOptions())
	if err != nil {
		return "", err
	}
	b.WriteString("\n=== normalized (correlations removed, outerjoins simplified) ===\n")
	b.WriteString(algebra.FormatRel(md, norm))

	finalPlan := norm
	if cfg.CostBased {
		sc := db.statsNow()
		o := &opt.Optimizer{Md: md, Cat: db.store.Catalog, Stats: sc, Config: cfg.optConfig()}
		r := o.Optimize(norm, correlatedSeed(md, res.Rel, cfg)...)
		finalPlan = r.Plan
		fmt.Fprintf(&b, "\n=== cost-based plan (cost %.0f, %d plans explored) ===\n", r.Cost, r.Explored)
		b.WriteString(opt.FormatWithEstimates(md, db.store.Catalog, sc, r.Plan, opt.ExecHints{
			ApplyStrategy:   cfg.normApplyStrategy(),
			Parallelism:     cfg.Parallelism,
			DisableBatch:    cfg.DisableBatch,
			JoinStrategy:    cfg.normJoinStrategy(),
			AggStrategy:     cfg.normAggStrategy(),
			DisableSortElim: cfg.DisableSortElim,
		}))
	}
	fmt.Fprintf(&b, "\nresult cache: %s\n", db.resultCacheStatus(md, finalPlan, cfg))
	return b.String(), nil
}

// cacheStatus previews how the plan cache would serve this query right
// now — "hit", "miss", or "bypass" — without touching counters or
// recency.
func (db *DB) cacheStatus(sql string, cfg Config) string {
	if cfg.PlanCache.Disabled {
		return "bypass"
	}
	db.cacheMu.Lock()
	c := db.cache
	db.cacheMu.Unlock()
	if c == nil {
		return "miss"
	}
	shape, lits, err := plancache.Fingerprint(sql)
	if err != nil {
		return "bypass"
	}
	fam := c.Peek(shape+"\x00"+cfg.planKey(), db.epoch.Load())
	if fam == nil {
		return "miss"
	}
	if fam.Uncacheable {
		return "bypass"
	}
	params, vkey, ok := plancache.Bind(fam.Positions, lits)
	if !ok {
		return "bypass"
	}
	v := fam.Variant(vkey)
	if v == nil {
		return "miss"
	}
	if _, found := v.Plan(plancache.BucketKey(v.Descs, db.statsNow(), params)); !found {
		return "miss"
	}
	return "hit"
}

// TPCHQuery returns the text of a named TPC-H benchmark query
// (e.g. "Q2", "Q17").
func TPCHQuery(name string) (string, bool) {
	q, ok := tpch.Queries[name]
	return q, ok
}

// TPCHQueryNames lists the available benchmark queries in order.
func TPCHQueryNames() []string {
	return []string{"Q1", "Q2", "Q4", "Q6", "Q11", "Q15", "Q16", "Q17", "Q18", "Q20", "Q21", "Q22"}
}
