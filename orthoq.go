// Package orthoq is a SQL query engine built around the subquery and
// aggregation optimizations of Galindo-Legaria & Joshi, "Orthogonal
// Optimization of Subqueries and Aggregation" (SIGMOD 2001):
// Apply-based algebraic decorrelation (query flattening), outerjoin
// simplification, GroupBy reordering around join variants,
// LocalGroupBy splitting, and SegmentApply segmented execution —
// composed as independent primitives inside a cost-based optimizer.
//
// Typical use:
//
//	db, _ := orthoq.OpenTPCH(0.01, 1)
//	rows, _ := db.Query(`select c_custkey from customer
//	    where 1000000 < (select sum(o_totalprice) from orders
//	                     where o_custkey = c_custkey)`)
//	fmt.Println(rows.Table())
//
// Config toggles each optimization independently, which is how the
// benchmark harness reproduces the paper's evaluation.
package orthoq

import (
	"fmt"
	"strings"
	"time"

	"orthoq/internal/algebra"
	"orthoq/internal/algebrize"
	"orthoq/internal/core"
	"orthoq/internal/exec"
	"orthoq/internal/opt"
	"orthoq/internal/sql/catalog"
	"orthoq/internal/sql/parser"
	"orthoq/internal/sql/types"
	"orthoq/internal/stats"
	"orthoq/internal/storage"
	"orthoq/internal/tpch"
)

// Value is a SQL datum (NULL-aware tagged union).
type Value = types.Datum

// Row is one result tuple.
type Row = types.Row

// Catalog re-exports the schema catalog type for embedders.
type Catalog = catalog.Catalog

// Table re-exports the table schema type.
type Table = catalog.Table

// Column re-exports the column schema type.
type Column = catalog.Column

// Index re-exports the index schema type.
type Index = catalog.Index

// Config selects which of the paper's optimizations run. The zero
// value disables everything (correlated, unoptimized execution); use
// DefaultConfig for the full technique set.
type Config struct {
	// Decorrelate removes correlations during normalization (§2,
	// "query flattening"). Off = the correlated strategy.
	Decorrelate bool
	// RemoveClass2 also removes class-2 subqueries (identities (5)-(7),
	// duplicating common subexpressions; §2.5).
	RemoveClass2 bool
	// SimplifyOuterJoins converts outerjoins to joins under
	// null-rejecting predicates, including rejection derived through
	// GroupBy (§1.2).
	SimplifyOuterJoins bool
	// CostBased enables the transformation-rule optimizer (§4). Off =
	// execute the normalized plan as-is.
	CostBased bool
	// GroupByReorder enables §3.1/3.2 GroupBy reordering rules.
	GroupByReorder bool
	// LocalAgg enables §3.3 LocalGroupBy splitting and pushdown.
	LocalAgg bool
	// SegmentApply enables §3.4 segmented execution rules.
	SegmentApply bool
	// JoinReorder enables join commutativity/associativity.
	JoinReorder bool
	// CorrelatedReintro lets the optimizer turn joins back into
	// index-lookup Apply plans when cheaper (§4).
	CorrelatedReintro bool
	// MaxSteps caps optimizer search expansions (0 = default).
	MaxSteps int
	// Parallelism is the worker count for morsel-driven parallel
	// execution of eligible scan/join/aggregation subtrees. 0 or 1
	// executes serially (the default, preserving deterministic row
	// order); higher values may return rows in a different order than
	// serial execution (the bag of rows is identical).
	Parallelism int
}

// DefaultConfig enables the paper's full technique set.
func DefaultConfig() Config {
	return Config{
		Decorrelate:        true,
		SimplifyOuterJoins: true,
		CostBased:          true,
		GroupByReorder:     true,
		LocalAgg:           true,
		SegmentApply:       true,
		JoinReorder:        true,
		CorrelatedReintro:  true,
	}
}

func (c Config) normOptions() core.Options {
	return core.Options{
		RemoveClass2:   c.RemoveClass2,
		KeepCorrelated: !c.Decorrelate,
		KeepOuterJoins: !c.SimplifyOuterJoins,
	}
}

func (c Config) optConfig() opt.Config {
	return opt.Config{
		Norm:                     c.normOptions(),
		DisableGroupByReorder:    !c.GroupByReorder,
		DisableLocalAgg:          !c.LocalAgg,
		DisableSegmentApply:      !c.SegmentApply,
		DisableJoinReorder:       !c.JoinReorder,
		DisableCorrelatedReintro: !c.CorrelatedReintro,
		MaxSteps:                 c.MaxSteps,
	}
}

// DB is a database handle: schema, stored data, and statistics.
type DB struct {
	store *storage.Store
	stats *stats.Collection
}

// Open wraps an existing store.
func Open(store *storage.Store) *DB {
	return &DB{store: store, stats: stats.Collect(store)}
}

// OpenTPCH generates a TPC-H database at the given scale factor with
// deterministic contents for the seed, builds indexes, and collects
// statistics.
func OpenTPCH(scaleFactor float64, seed int64) (*DB, error) {
	st, err := tpch.Generate(scaleFactor, seed)
	if err != nil {
		return nil, err
	}
	return Open(st), nil
}

// NewMemory creates an empty database with a fresh catalog; create
// tables with CreateTable and load rows with Insert.
func NewMemory() *DB {
	st := storage.New(catalog.New())
	return &DB{store: st, stats: stats.Collect(st)}
}

// CreateTable registers a table schema and allocates storage.
func (db *DB) CreateTable(t *Table) error {
	_, err := db.store.CreateTable(t)
	return err
}

// Insert adds rows to a table. Call Analyze after bulk loads.
func (db *DB) Insert(table string, rows ...Row) error {
	tbl, ok := db.store.Table(table)
	if !ok {
		return fmt.Errorf("orthoq: unknown table %q", table)
	}
	return tbl.InsertAll(rows)
}

// Analyze rebuilds indexes and statistics; run it after loading data.
func (db *DB) Analyze() {
	for _, schema := range db.store.Catalog.Tables() {
		if tbl, ok := db.store.Table(schema.Name); ok {
			tbl.BuildIndexes()
		}
	}
	db.stats = stats.Collect(db.store)
}

// Catalog exposes the schema catalog.
func (db *DB) Catalog() *Catalog { return db.store.Catalog }

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    []Row
	// Plan is the executed plan rendered as text.
	Plan string
	// Elapsed is the pure execution time (compile excluded).
	Elapsed time.Duration
	// OptimizerSteps counts plans explored during optimization.
	OptimizerSteps int
	// EstimatedCost is the cost model's value for the chosen plan.
	EstimatedCost float64
	// Trace is the per-operator execution statistics rendering; only
	// set by QueryAnalyze.
	Trace string
}

// Table renders the result as an aligned text table.
func (r *Rows) Table() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, 0, len(r.Data)+1)
	cells = append(cells, r.Columns)
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Data {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for ri, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Stmt is a compiled, reusable query plan.
type Stmt struct {
	db   *DB
	prep *prepared
}

// Prepare compiles SQL under cfg once; Run executes it repeatedly
// without re-optimizing. Statistics and data changes after Prepare are
// not reflected until re-preparing.
func (db *DB) Prepare(sql string, cfg Config) (*Stmt, error) {
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, prep: prep}, nil
}

// Run executes the prepared plan.
func (s *Stmt) Run() (*Rows, error) {
	return s.prep.run(s.db)
}

// Plan returns the compiled plan text.
func (s *Stmt) Plan() string {
	return algebra.FormatRel(s.prep.md, s.prep.plan)
}

// Query runs SQL with the full technique set.
func (db *DB) Query(sql string) (*Rows, error) {
	return db.QueryCfg(sql, DefaultConfig())
}

// QueryCfg runs SQL under an explicit optimization configuration.
func (db *DB) QueryCfg(sql string, cfg Config) (*Rows, error) {
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return prep.run(db)
}

// prepared is a compiled query.
type prepared struct {
	md       *algebra.Metadata
	plan     algebra.Rel
	outCols  []algebra.ColID
	outNames []string
	steps    int
	cost     float64
	par      int
}

func (db *DB) prepare(sql string, cfg Config) (*prepared, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	md := algebra.NewMetadata()
	res, err := algebrize.Build(db.store.Catalog, md, q)
	if err != nil {
		return nil, err
	}
	rel, err := core.Normalize(md, res.Rel, cfg.normOptions())
	if err != nil {
		return nil, err
	}
	p := &prepared{md: md, plan: rel, outCols: res.OutCols, outNames: res.OutNames,
		par: cfg.Parallelism}
	if cfg.CostBased {
		o := &opt.Optimizer{Md: md, Cat: db.store.Catalog, Stats: db.stats, Config: cfg.optConfig()}
		r := o.Optimize(rel, correlatedSeed(md, res.Rel, cfg)...)
		p.plan, p.steps, p.cost = r.Plan, r.Explored, r.Cost
	}
	return p, nil
}

// correlatedSeed builds the correlated (Apply) formulation as an
// additional optimizer starting point, so cost-based search considers
// correlated execution strategies alongside the flattened form
// (paper §4).
func correlatedSeed(md *algebra.Metadata, algebrized algebra.Rel, cfg Config) []algebra.Rel {
	if !cfg.CorrelatedReintro || !cfg.Decorrelate {
		return nil
	}
	keep := cfg.normOptions()
	keep.KeepCorrelated = true
	seed, err := core.Normalize(md, algebrized, keep)
	if err != nil {
		return nil
	}
	return []algebra.Rel{seed}
}

func (p *prepared) run(db *DB) (*Rows, error) {
	return p.runTraced(db, false)
}

func (p *prepared) runTraced(db *DB, trace bool) (*Rows, error) {
	ctx := exec.NewContext(db.store, p.md)
	ctx.Stats = db.stats
	ctx.Parallelism = p.par
	if trace {
		ctx.EnableTrace()
	}
	start := time.Now()
	out, err := exec.Run(ctx, p.plan, p.outCols)
	if err != nil {
		return nil, err
	}
	r := &Rows{
		Columns:        append([]string(nil), p.outNames...),
		Data:           out.Rows,
		Plan:           algebra.FormatRel(p.md, p.plan),
		Elapsed:        time.Since(start),
		OptimizerSteps: p.steps,
		EstimatedCost:  p.cost,
	}
	if trace {
		r.Trace = ctx.FormatTrace(p.plan)
	}
	return r, nil
}

// QueryAnalyze runs SQL under cfg with per-operator execution
// statistics collected; the result's Trace field holds the annotated
// plan (rows produced, Open counts — correlated execution shows its
// per-row re-opens — and inclusive time per operator).
func (db *DB) QueryAnalyze(sql string, cfg Config) (*Rows, error) {
	prep, err := db.prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return prep.runTraced(db, true)
}

// Explain compiles a query under cfg and reports each compilation
// stage: the algebrized tree (§2.1), the normalized/decorrelated tree
// (§2.2–2.3), and the cost-based plan (§3–4).
func (db *DB) Explain(sql string, cfg Config) (string, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	md := algebra.NewMetadata()
	res, err := algebrize.Build(db.store.Catalog, md, q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("=== algebrized (mixed scalar/relational tree) ===\n")
	b.WriteString(algebra.FormatRel(md, res.Rel))

	applied, err := core.IntroduceApplies(md, res.Rel)
	if err != nil {
		return "", err
	}
	b.WriteString("\n=== after Apply introduction (mutual recursion removed) ===\n")
	b.WriteString(algebra.FormatRel(md, applied))

	norm, err := core.Normalize(md, res.Rel, cfg.normOptions())
	if err != nil {
		return "", err
	}
	b.WriteString("\n=== normalized (correlations removed, outerjoins simplified) ===\n")
	b.WriteString(algebra.FormatRel(md, norm))

	if cfg.CostBased {
		o := &opt.Optimizer{Md: md, Cat: db.store.Catalog, Stats: db.stats, Config: cfg.optConfig()}
		r := o.Optimize(norm, correlatedSeed(md, res.Rel, cfg)...)
		fmt.Fprintf(&b, "\n=== cost-based plan (cost %.0f, %d plans explored) ===\n", r.Cost, r.Explored)
		b.WriteString(opt.FormatWithEstimates(md, db.store.Catalog, db.stats, r.Plan))
	}
	return b.String(), nil
}

// TPCHQuery returns the text of a named TPC-H benchmark query
// (e.g. "Q2", "Q17").
func TPCHQuery(name string) (string, bool) {
	q, ok := tpch.Queries[name]
	return q, ok
}

// TPCHQueryNames lists the available benchmark queries in order.
func TPCHQueryNames() []string {
	return []string{"Q1", "Q2", "Q4", "Q11", "Q15", "Q16", "Q17", "Q18", "Q20", "Q21", "Q22"}
}
