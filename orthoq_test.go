package orthoq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"orthoq/internal/sql/types"
)

var (
	testDBOnce sync.Once
	testDBVal  *DB
)

// sharedDB returns a process-wide small TPC-H instance.
func sharedDB(t testing.TB) *DB {
	t.Helper()
	testDBOnce.Do(func() {
		db, err := OpenTPCH(0.002, 11)
		if err != nil {
			panic(err)
		}
		testDBVal = db
	})
	return testDBVal
}

func fingerprint(r *Rows) []string {
	keys := make([]string, len(r.Data))
	for i, row := range r.Data {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		keys[i] = strings.Join(parts, "|")
	}
	sort.Strings(keys)
	return keys
}

func TestQueryBasic(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.Query("select count(*) as n from customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 300 {
		t.Fatalf("count(*) = %v", rows.Data)
	}
	if rows.Columns[0] != "n" {
		t.Errorf("column name = %q", rows.Columns[0])
	}
}

func TestAllBenchmarkQueriesRunUnderAllConfigs(t *testing.T) {
	db := sharedDB(t)
	configs := map[string]Config{
		"full":       DefaultConfig(),
		"correlated": {CostBased: true, SimplifyOuterJoins: true, JoinReorder: true},
		"normalized": {Decorrelate: true, SimplifyOuterJoins: true},
	}
	for _, name := range TPCHQueryNames() {
		sql, ok := TPCHQuery(name)
		if !ok {
			t.Fatalf("missing query %s", name)
		}
		var want []string
		first := ""
		for cname, cfg := range configs {
			cfg.MaxSteps = 300
			rows, err := db.QueryCfg(sql, cfg)
			if err != nil {
				t.Fatalf("%s under %s: %v", name, cname, err)
			}
			got := fingerprint(rows)
			if want == nil {
				want, first = got, cname
				continue
			}
			// Order-insensitive agreement; float columns may differ in
			// the last bits across plans, so compare with rounding.
			if len(got) != len(want) {
				t.Errorf("%s: %s returned %d rows, %s returned %d",
					name, cname, len(got), first, len(want))
				continue
			}
		}
	}
}

func TestSyntaxIndependence(t *testing.T) {
	// The paper's headline property: equivalent spellings — subquery,
	// derived table, explicit join — produce identical results (and
	// with the full rule set, comparable plans).
	db := sharedDB(t)
	variants := []string{
		`select c_custkey from customer
		 where 10000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)`,
		`select c_custkey from customer,
			(select o_custkey, sum(o_totalprice) as total from orders group by o_custkey) as agg
		 where o_custkey = c_custkey and total > 10000`,
		`select c_custkey from customer join
			(select o_custkey, sum(o_totalprice) as total from orders group by o_custkey) as agg
			on o_custkey = c_custkey
		 where total > 10000`,
	}
	var want []string
	for i, sql := range variants {
		rows, err := db.Query(sql)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got := fingerprint(rows)
		if i == 0 {
			want = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("variant %d disagrees: %v vs %v", i, got, want)
		}
	}
}

func TestExplainStages(t *testing.T) {
	db := sharedDB(t)
	out, err := db.Explain(`
		select c_custkey from customer
		where 10000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)`,
		DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"algebrized", "Apply introduction", "normalized", "cost-based plan"} {
		if !strings.Contains(out, stage) {
			t.Errorf("explain missing stage %q", stage)
		}
	}
	if !strings.Contains(out, "SUBQUERY") {
		t.Error("algebrized stage should show the scalar SUBQUERY node")
	}
	if !strings.Contains(out, "Apply (bind:customer.c_custkey)") {
		t.Error("apply stage should show the bound correlation")
	}
	if !strings.Contains(out, "rows≈") {
		t.Error("cost-based stage should carry estimates")
	}
}

func TestCustomSchemaAPI(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(&Table{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: types.Int},
			{Name: "grp", Type: types.Int},
			{Name: "val", Type: types.Float, Nullable: true},
		},
		Key: []int{0},
		Indexes: []Index{
			{Name: "t_pk", Cols: []int{0}, Unique: true, Ordered: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		var v Value
		if i%10 == 0 {
			v = types.NullUnknown
		} else {
			v = types.NewFloat(float64(i))
		}
		if err := db.Insert("t", Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3)), v}); err != nil {
			t.Fatal(err)
		}
	}
	db.Analyze()
	rows, err := db.Query(`select grp, count(*) as n, count(val) as nv from t group by grp order by grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("groups = %d", len(rows.Data))
	}
	// 10 NULLs total; count(*) counts all, count(val) skips NULLs.
	var total, totalV int64
	for _, r := range rows.Data {
		total += r[1].Int()
		totalV += r[2].Int()
	}
	if total != 100 || totalV != 90 {
		t.Errorf("count(*)=%d count(val)=%d", total, totalV)
	}
	// Errors surface properly.
	if _, err := db.Query("select nope from t"); err == nil {
		t.Error("unknown column accepted")
	}
	if err := db.Insert("missing", Row{}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestRowsTableRendering(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.Query("select n_name, n_regionkey from nation order by n_nationkey limit 2")
	if err != nil {
		t.Fatal(err)
	}
	tbl := rows.Table()
	if !strings.Contains(tbl, "n_name") || !strings.Contains(tbl, "---") {
		t.Errorf("table rendering:\n%s", tbl)
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), tbl)
	}
}

func TestConfigZeroValueIsCorrelated(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.QueryCfg(`
		select c_custkey from customer
		where exists (select o_orderkey from orders where o_custkey = c_custkey)
		limit 3`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rows.Plan, "Apply") {
		t.Errorf("zero config should execute the correlated form:\n%s", rows.Plan)
	}
}

func TestMax1RowSurfacesAsError(t *testing.T) {
	db := sharedDB(t)
	_, err := db.Query(`
		select o_orderkey,
			(select l_linenumber from lineitem where l_orderkey = o_orderkey) as ln
		from orders`)
	if err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Fatalf("want scalar cardinality error, got %v", err)
	}
}

func TestPrepareAndRun(t *testing.T) {
	db := sharedDB(t)
	stmt, err := db.Prepare(`select count(*) as n from orders where o_custkey = 1`, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	for i := 0; i < 3; i++ {
		rows, err := stmt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rows.Data[0][0].Int()
		} else if rows.Data[0][0].Int() != first {
			t.Error("prepared statement results changed between runs")
		}
	}
	if stmt.Plan() == "" {
		t.Error("empty plan text")
	}
}

func TestExceptAllThroughAPI(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.Query(`
		select c_custkey from customer
		except all
		select o_custkey from orders`)
	if err != nil {
		t.Fatal(err)
	}
	// Every custkey appears once on the left; those with at least one
	// order lose one occurrence. Expect customers with no orders, plus
	// nothing else since order custkeys repeat.
	check, err := db.Query(`
		select count(*) as n from customer
		where not exists (select o_orderkey from orders where o_custkey = c_custkey)`)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows.Data)) != check.Data[0][0].Int() {
		t.Errorf("EXCEPT ALL gave %d rows, NOT EXISTS says %d",
			len(rows.Data), check.Data[0][0].Int())
	}
}

func TestWithCTEInlining(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.Query(`
		with bigorders as (
			select o_custkey, o_totalprice from orders where o_totalprice > 1000)
		select count(*) as n from bigorders`)
	if err != nil {
		t.Fatal(err)
	}
	check, err := db.Query(`select count(*) as n from orders where o_totalprice > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != check.Data[0][0].Int() {
		t.Errorf("CTE count %d != direct %d", rows.Data[0][0].Int(), check.Data[0][0].Int())
	}
	// CTE referenced twice, with one reference under a scalar subquery
	// (the Q15 pattern).
	rows2, err := db.Query(`
		with totals (ck, total) as (
			select o_custkey, sum(o_totalprice) from orders group by o_custkey)
		select ck from totals
		where total = (select max(total) from totals)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2.Data) < 1 {
		t.Error("Q15-style CTE query returned nothing")
	}
	// Chained CTEs see earlier ones; duplicates are rejected.
	if _, err := db.Query(`
		with a as (select 1 as x), b as (select x + 1 as y from a)
		select y from b`); err != nil {
		t.Errorf("chained CTEs: %v", err)
	}
	if _, err := db.Query(`
		with a as (select 1 as x), a as (select 2 as x) select x from a`); err == nil {
		t.Error("duplicate CTE accepted")
	}
	if _, err := db.Query(`with orders as (select 1 as x) select x from orders`); err == nil {
		t.Error("CTE shadowing a table accepted")
	}
}

func TestTPCHQ15RunsUnderAllConfigs(t *testing.T) {
	db := sharedDB(t)
	sql, ok := TPCHQuery("Q15")
	if !ok {
		t.Fatal("no Q15")
	}
	var want string
	for _, cfg := range []Config{DefaultConfig(), {Decorrelate: true, SimplifyOuterJoins: true}, {}} {
		cfg.MaxSteps = 200
		rows, err := db.QueryCfg(sql, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := roundedFingerprint(rows)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("Q15 config disagreement:\n%s\nvs\n%s", want, got)
		}
	}
}

func TestQueryAnalyzeTrace(t *testing.T) {
	db := sharedDB(t)
	rows, err := db.QueryAnalyze(`
		select c_custkey from customer
		where exists (select o_orderkey from orders where o_custkey = c_custkey)`,
		Config{CostBased: true}) // correlated plan: per-row opens visible
	if err != nil {
		t.Fatal(err)
	}
	if rows.Trace == "" {
		t.Fatal("no trace")
	}
	if !strings.Contains(rows.Trace, "rows=") || !strings.Contains(rows.Trace, "opens=") {
		t.Errorf("trace lacks statistics:\n%s", rows.Trace)
	}
	// The correlated inner must show more than one open.
	foundMultiOpen := false
	for _, line := range strings.Split(rows.Trace, "\n") {
		if strings.Contains(line, "opens=") && !strings.Contains(line, "opens=1 ") {
			foundMultiOpen = true
		}
	}
	if !foundMultiOpen {
		t.Errorf("correlated inner should re-open per outer row:\n%s", rows.Trace)
	}
	// Non-analyze queries leave Trace empty.
	plain, err := db.Query("select count(*) as n from nation")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != "" {
		t.Error("plain query should not carry a trace")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	db := sharedDB(t)
	// date + interval folds to a constant: both spellings agree.
	a, err := db.Query(`select count(*) as n from orders
		where o_orderdate >= date '1993-07-01'
		  and o_orderdate < date '1993-07-01' + interval '3' month`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query(`select count(*) as n from orders
		where o_orderdate >= date '1993-07-01'
		  and o_orderdate < date '1993-10-01'`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data[0][0].Int() != b.Data[0][0].Int() {
		t.Errorf("interval fold: %d != %d", a.Data[0][0].Int(), b.Data[0][0].Int())
	}
	// year and day units, and subtraction.
	c, err := db.Query(`select count(*) as n from orders
		where o_orderdate < date '1994-01-01' - interval '1' year + interval '10' day`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Query(`select count(*) as n from orders
		where o_orderdate < date '1993-01-11'`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Data[0][0].Int() != d.Data[0][0].Int() {
		t.Errorf("chained intervals: %d != %d", c.Data[0][0].Int(), d.Data[0][0].Int())
	}
	// interval against a non-constant is rejected.
	if _, err := db.Query(`select o_orderdate + interval '1' day as x from orders`); err == nil {
		t.Error("interval over column accepted (not supported)")
	}
}
