package orthoq

// End-to-end property tests for morsel-driven parallel execution:
// for every TPC-H benchmark query and the random subquery corpus,
// Parallelism ∈ {2, 4, 8} must return the same bag of rows as serial
// execution. Row order may differ, and float aggregates may differ by
// ulp-scale rounding noise (partial sums accumulate in
// morsel-assignment order), so rows are matched order-insensitively
// with a small relative tolerance on numeric values.

import (
	"math/rand"
	"strings"
	"testing"
)

// approxEqualDatum compares two result values with relative tolerance
// for numerics (parallel float summation is not bit-reproducible).
func approxEqualDatum(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.Kind().Numeric() && b.Kind().Numeric() {
		fa, _ := a.AsFloat()
		fb, _ := b.AsFloat()
		diff := fa - fb
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if fa > scale {
			scale = fa
		}
		if -fa > scale {
			scale = -fa
		}
		return diff <= 1e-6*scale
	}
	return a.String() == b.String()
}

func approxEqualRow(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !approxEqualDatum(a[i], b[i]) {
			return false
		}
	}
	return true
}

// sameBagApprox greedily matches each row of a to an unused
// approximately-equal row of b.
func sameBagApprox(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, ra := range a {
		found := false
		for j, rb := range b {
			if used[j] || !approxEqualRow(ra, rb) {
				continue
			}
			used[j] = true
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}

func checkParallelAgainstSerial(t *testing.T, db *DB, label, sql string, cfg Config) {
	t.Helper()
	serialRows, err := db.QueryCfg(sql, cfg)
	if err != nil {
		t.Fatalf("%s serial: %v\nsql: %s", label, err, sql)
	}
	for _, par := range []int{2, 4, 8} {
		pcfg := cfg
		pcfg.Parallelism = par
		rows, err := db.QueryCfg(sql, pcfg)
		if err != nil {
			t.Fatalf("%s par=%d: %v\nsql: %s", label, par, err, sql)
		}
		if !sameBagApprox(serialRows.Data, rows.Data) {
			t.Fatalf("%s par=%d disagrees with serial\nsql: %s\nserial:\n%s\nparallel:\n%s",
				label, par, sql, roundedFingerprint(serialRows), roundedFingerprint(rows))
		}
	}
}

func TestParallelTPCHMatchesSerial(t *testing.T) {
	db := sharedDB(t)
	cfg := DefaultConfig()
	cfg.MaxSteps = 300
	for _, name := range TPCHQueryNames() {
		sql, ok := TPCHQuery(name)
		if !ok {
			t.Fatalf("missing query %s", name)
		}
		checkParallelAgainstSerial(t, db, name, sql, cfg)
	}
}

func TestParallelFuzzCorpusMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := sharedDB(t)
	cfg := DefaultConfig()
	cfg.MaxSteps = 200
	r := rand.New(rand.NewSource(20010521))
	for i := 0; i < 120; i++ {
		checkParallelAgainstSerial(t, db, "fuzz", randQuery(r), cfg)
	}
}

// TestParallelAnalyzeTrace checks that EXPLAIN ANALYZE surfaces the
// exchange's worker and morsel counts.
func TestParallelAnalyzeTrace(t *testing.T) {
	db := sharedDB(t)
	sql, _ := TPCHQuery("Q1")
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	rows, err := db.QueryAnalyze(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rows.Trace, "workers=4") {
		t.Fatalf("trace missing workers=4:\n%s", rows.Trace)
	}
}
