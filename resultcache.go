package orthoq

// Semantic result cache integration: whole-result reuse with
// single-flight deduplication, layered over the plan cache. The plan
// cache saves compilation; the result cache saves execution. See
// internal/resultcache for the cache itself and DESIGN.md §14 for the
// keying argument.

import (
	"context"
	"sort"
	"strings"
	"time"

	"orthoq/internal/algebra"
	"orthoq/internal/resultcache"
	"orthoq/internal/sql/types"
)

// ResultCacheConfig configures the semantic result cache consulted by
// Query/QueryCfg/Stmt.Run/QueryStream. The zero value disables it —
// result caching changes when execution happens (a warm repeat returns
// without running the plan), so embedders opt in explicitly; servers
// enable it by default for wire traffic.
//
// A cached result is returned only when the plan fingerprint, the
// plan-affecting config, every bound parameter value, and the pinned
// version ID of every referenced table all match — a hit is provably
// equivalent to re-executing against the same snapshot. Any write to a
// referenced table mints new version IDs, making stale entries
// unreachable immediately (no TTL). Results served from the cache
// share row storage with every other consumer; query results are
// read-only.
type ResultCacheConfig struct {
	// Enabled turns the cache on for runs under this Config. All runs
	// on one DB handle share a single cache instance (first enabling
	// Config sizes it; later sizing fields are ignored).
	Enabled bool
	// MaxBytes caps the summed approximate footprint of cached results
	// (0 = default 32 MiB).
	MaxBytes int64
	// MaxEntries caps cached results (0 = default 4096).
	MaxEntries int64
	// MaxEntryBytes caps a single result; larger results run uncached
	// every time (0 = default MaxBytes/8).
	MaxEntryBytes int64
	// DisableSubPlans turns off shared sub-expression materialization
	// (caching eligible aggregation subtrees inside larger plans, per
	// Roy et al. multi-query optimization). On by default when Enabled.
	DisableSubPlans bool
}

// resultCache returns the DB's result cache, creating it from cfg's
// sizing on first use.
func (db *DB) resultCache(cfg ResultCacheConfig) *resultcache.Cache {
	db.rcMu.Lock()
	defer db.rcMu.Unlock()
	if db.rcache == nil {
		db.rcache = resultcache.New(resultcache.Config{
			MaxBytes:      cfg.MaxBytes,
			MaxEntries:    cfg.MaxEntries,
			MaxEntryBytes: cfg.MaxEntryBytes,
		})
	}
	return db.rcache
}

// ResultCacheStats reports result-cache effectiveness counters: hits,
// misses, single-flight shared executions, sub-plan hits/misses,
// inserts, rejections, evictions, invalidations, and the live
// entry/byte gauges. Zero value when no run has enabled the cache.
func (db *DB) ResultCacheStats() resultcache.Stats {
	db.rcMu.Lock()
	c := db.rcache
	db.rcMu.Unlock()
	if c == nil {
		return resultcache.Stats{}
	}
	return c.CacheStats()
}

// withResultCache arms a run's options with the result cache when cfg
// enables it. The store snapshot is pinned here — before compilation —
// so the versions the key names are exactly the versions execution
// reads: key time and read time cannot straddle a concurrent publish.
func (db *DB) withResultCache(cfg Config, opts runOpts) runOpts {
	if !cfg.ResultCache.Enabled {
		return opts
	}
	opts.rcache = db.resultCache(cfg.ResultCache)
	opts.rcSub = !cfg.ResultCache.DisableSubPlans
	opts.rcCfgKey = cfg.planKey()
	if opts.snap == nil {
		opts.snap = db.store.Snapshot()
	}
	return opts
}

// invalidateResultCache eagerly drops cached results keyed on the
// named table. Garbage collection only: the write already minted new
// version IDs, so the dropped entries could never be served again.
func (db *DB) invalidateResultCache(table string) {
	db.rcMu.Lock()
	c := db.rcache
	db.rcMu.Unlock()
	if c != nil {
		c.InvalidateTables(strings.ToLower(table))
	}
}

// purgeResultCache drops everything — Analyze republishes every table
// with fresh version IDs, so the whole cache just became unreachable.
func (db *DB) purgeResultCache() {
	db.rcMu.Lock()
	c := db.rcache
	db.rcMu.Unlock()
	if c != nil {
		c.Purge()
	}
}

// cachedResult is the whole-result cache payload: the materialized
// Rows plus its accounted footprint. The Rows value (and its Data) is
// shared by every consumer and treated as immutable.
type cachedResult struct {
	rows  *Rows
	bytes int64
}

// datumKey renders one value for a cache key, kind-tagged so values of
// different types never alias ("1" vs 1).
func datumKey(b *strings.Builder, d types.Datum) {
	if d.IsNull() {
		b.WriteString("null")
		return
	}
	b.WriteString(d.Kind().String())
	b.WriteByte(':')
	b.WriteString(d.String())
}

// resultKey builds the whole-result cache key for a prepared plan
// bound to params, reading versions from the pre-pinned snapshot. It
// returns the lowercased referenced tables (the invalidation reverse
// index) and ok=false when the plan is not safely cacheable.
func resultKey(p *prepared, params []types.Datum, opts runOpts) (string, []string, bool) {
	if opts.snap == nil {
		return "", nil, false
	}
	var b strings.Builder
	b.WriteString("q1\x00")
	b.WriteString(p.fingerprint)
	b.WriteByte('\x00')
	b.WriteString(opts.rcCfgKey)
	b.WriteString("\x00p:")
	for _, d := range params {
		datumKey(&b, d)
		b.WriteByte(';')
	}
	seen := map[string]struct{}{}
	algebra.VisitRel(p.plan, func(r algebra.Rel) bool {
		if g, ok := r.(*algebra.Get); ok {
			seen[strings.ToLower(g.Table)] = struct{}{}
		}
		return true
	})
	tables := make([]string, 0, len(seen))
	for name := range seen {
		tables = append(tables, name)
	}
	sort.Strings(tables)
	for _, name := range tables {
		v, ok := opts.snap.Table(name)
		if !ok {
			return "", nil, false
		}
		b.WriteString("\x00tv:")
		b.WriteString(name)
		b.WriteByte('=')
		writeUint(&b, v.ID())
	}
	return b.String(), tables, true
}

func writeUint(b *strings.Builder, v uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// approxRowsBytes estimates a materialized result's footprint for
// cache accounting: slice/header overhead per row and datum plus
// string payloads.
func approxRowsBytes(data []Row) int64 {
	n := int64(256)
	for _, row := range data {
		n += int64(24 + 40*len(row))
		for _, d := range row {
			if !d.IsNull() && d.Kind() == types.String {
				n += int64(len(d.Str()))
			}
		}
	}
	return n
}

// runCached is the result-cache wrapper around prepared.run: serve a
// provably-equivalent cached result when one exists, otherwise execute
// under single-flight so concurrent identical queries admit one
// executor. With the cache disarmed it is exactly prepared.run.
func (p *prepared) runCached(db *DB, params []types.Datum, cacheStatus string, opts runOpts) (*Rows, error) {
	if opts.rcache == nil {
		return p.run(db, params, cacheStatus, opts)
	}
	key, tables, ok := resultKey(p, params, opts)
	if !ok {
		return p.run(db, params, cacheStatus, opts)
	}
	start := time.Now()
	goCtx := opts.ctx
	if goCtx == nil {
		goCtx = context.Background()
	}
	v, src, err := opts.rcache.Do(goCtx, key, tables, func() (any, int64, error) {
		rows, err := p.run(db, params, cacheStatus, opts)
		if err != nil {
			return nil, 0, err
		}
		return &cachedResult{rows: rows, bytes: approxRowsBytes(rows.Data)},
			approxRowsBytes(rows.Data), nil
	})
	if err != nil {
		return nil, err
	}
	cr := v.(*cachedResult)
	if src == resultcache.SrcMiss {
		// This caller executed; run already noted metrics and the log.
		return cr.rows, nil
	}
	// Hit or shared: copy the result header (payload rows are shared,
	// immutable) and note a run of our own — the request happened even
	// though execution did not.
	elapsed := time.Since(start)
	r := *cr.rows
	r.Cache = "result"
	r.Elapsed = elapsed
	r.PeakMemBytes, r.Spills, r.Workers, r.Morsels = 0, 0, 0, 0
	r.spans = nil
	db.noteRun(p, "result", elapsed, int64(len(r.Data)), nil, 0, 0, 0, 0, opts)
	return &r, nil
}

// resultCacheStatus previews — without executing, counting, or
// touching recency — whether the result cache currently holds this
// plan's result. Best-effort: the preview compiles without
// parameterization, so a parameterized cached entry for the same text
// may not be found. Returns "off" when caching is disabled, else
// "hit", "miss", or "uncacheable".
func (db *DB) resultCacheStatus(md *algebra.Metadata, plan algebra.Rel, cfg Config) string {
	if !cfg.ResultCache.Enabled {
		return "off"
	}
	db.rcMu.Lock()
	c := db.rcache
	db.rcMu.Unlock()
	if c == nil {
		return "miss"
	}
	p := &prepared{md: md, plan: plan, fingerprint: planFingerprint(md, plan)}
	opts := runOpts{rcCfgKey: cfg.planKey(), snap: db.store.Snapshot()}
	key, _, ok := resultKey(p, nil, opts)
	if !ok {
		return "uncacheable"
	}
	if c.Contains(key) {
		return "hit"
	}
	return "miss"
}
