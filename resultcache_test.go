package orthoq

// Result-cache integration tests: hit/equivalence behavior over the
// TPC-H and fuzz workloads, snapshot interplay (a pinned snapshot must
// never observe a newer cached result and vice versa), copy-on-write
// invalidation under a concurrent writer hammer (-race), single-flight
// deduplication, streaming replay, EXPLAIN and metrics surfacing, and
// shared sub-plan materialization across near-duplicate texts.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"orthoq/internal/sql/types"
)

// rcCfg enables the result cache over the default configuration.
func rcCfg() Config {
	cfg := DefaultConfig()
	cfg.ResultCache.Enabled = true
	return cfg
}

// rcSerialCfg is rcCfg forced serial, the mode where sub-plan sharing
// is eligible.
func rcSerialCfg() Config {
	cfg := rcCfg()
	cfg.Parallelism = 1
	return cfg
}

func TestResultCacheHitIsByteIdentical(t *testing.T) {
	db := sharedDB(t)
	const q = "select c_mktsegment, count(*) as n, sum(c_acctbal) as s from customer group by c_mktsegment"

	want, err := db.QueryCfg(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := db.QueryCfg(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache == "result" {
		t.Fatalf("cold run served from result cache (Cache=%q)", cold.Cache)
	}
	warm, err := db.QueryCfg(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "result" {
		t.Fatalf("warm run Cache = %q, want %q", warm.Cache, "result")
	}
	for _, got := range []*Rows{cold, warm} {
		if g, w := roundedFingerprint(got), roundedFingerprint(want); g != w {
			t.Fatalf("cached result differs from uncached:\n%s\nvs\n%s", g, w)
		}
	}
}

// TestResultCacheEquivalenceTPCH runs the full benchmark set with the
// cache off, cold, and warm, and demands identical results each way.
func TestResultCacheEquivalenceTPCH(t *testing.T) {
	db := sharedDB(t)
	for _, name := range TPCHQueryNames() {
		q, ok := TPCHQuery(name)
		if !ok {
			t.Fatalf("no query %s", name)
		}
		want, err := db.QueryCfg(q, DefaultConfig())
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}
		for pass, label := range []string{"cold", "warm"} {
			got, err := db.QueryCfg(q, rcCfg())
			if err != nil {
				t.Fatalf("%s %s: %v", name, label, err)
			}
			if g, w := roundedFingerprint(got), roundedFingerprint(want); g != w {
				t.Fatalf("%s %s (pass %d, cache=%s) differs from uncached:\n%s\nvs\n%s",
					name, label, pass, got.Cache, g, w)
			}
		}
	}
}

// TestResultCacheEquivalenceFuzz replays a deterministic slice of the
// fuzz corpus cached and uncached.
func TestResultCacheEquivalenceFuzz(t *testing.T) {
	db := sharedDB(t)
	r := rand.New(rand.NewSource(77))
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		q := randQuery(r)
		want, err := db.QueryCfg(q, DefaultConfig())
		if err != nil {
			t.Fatalf("fuzz %d uncached: %v\n%s", i, err, q)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := db.QueryCfg(q, rcCfg())
			if err != nil {
				t.Fatalf("fuzz %d pass %d: %v\n%s", i, pass, err, q)
			}
			if g, w := roundedFingerprint(got), roundedFingerprint(want); g != w {
				t.Fatalf("fuzz %d pass %d (cache=%s) differs:\n%s\nvs\n%s\nquery:\n%s",
					i, pass, got.Cache, g, w, q)
			}
		}
	}
}

func rcScratchDB(t *testing.T) *DB {
	t.Helper()
	db := NewMemory()
	if err := db.CreateTable(&Table{
		Name: "kv",
		Columns: []Column{
			{Name: "id", Type: types.Int},
			{Name: "v", Type: types.Int},
		},
		Key: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestResultCacheInsertInvalidates is the staleness core: a cached
// result must be unreachable the moment a write publishes a new table
// version.
func TestResultCacheInsertInvalidates(t *testing.T) {
	db := rcScratchDB(t)
	const q = "select count(*) as n from kv"
	count := func() int64 {
		t.Helper()
		rows, err := db.QueryCfg(q, rcCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rows.Data[0][0].Int()
	}
	for i := 0; i < 5; i++ {
		if got := count(); got != int64(i) {
			t.Fatalf("after %d inserts: count = %d (stale cached read)", i, got)
		}
		// Re-read: now served from cache, same version, same answer.
		if got := count(); got != int64(i) {
			t.Fatalf("warm re-read after %d inserts: count = %d", i, got)
		}
		if err := db.Insert("kv", Row{types.NewInt(int64(i)), types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResultCacheSnapshotInterplay pins a snapshot, writes past it,
// and checks version-keyed isolation in both directions: the pinned
// snapshot never sees the newer cached result, and live queries never
// see the snapshot's older cached result.
func TestResultCacheSnapshotInterplay(t *testing.T) {
	db := rcScratchDB(t)
	for i := 0; i < 3; i++ {
		if err := db.Insert("kv", Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	const q = "select count(*) as n from kv"
	old := db.Snapshot()

	// Warm the cache *under the old snapshot* first.
	rows, err := db.QuerySnapshot(context.Background(), q, rcCfg(), old)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 3 {
		t.Fatalf("snapshot count = %d, want 3", got)
	}

	if err := db.Insert("kv", Row{types.NewInt(99), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}

	// Live read: must NOT be served the snapshot's cached 3.
	rows, err = db.QueryCfg(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 4 {
		t.Fatalf("live count after insert = %d, want 4 (served stale snapshot entry, cache=%s)",
			got, rows.Cache)
	}
	// Warm the live entry, then re-read the old snapshot: must still be 3.
	if _, err := db.QueryCfg(q, rcCfg()); err != nil {
		t.Fatal(err)
	}
	rows, err = db.QuerySnapshot(context.Background(), q, rcCfg(), old)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 3 {
		t.Fatalf("pinned snapshot count = %d, want 3 (served newer cached result, cache=%s)",
			got, rows.Cache)
	}
	// The snapshot's own warm re-read is a legitimate hit — same versions.
	rows, err = db.QuerySnapshot(context.Background(), q, rcCfg(), old)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Cache != "result" || rows.Data[0][0].Int() != 3 {
		t.Fatalf("snapshot warm re-read: cache=%s count=%d, want result/3",
			rows.Cache, rows.Data[0][0].Int())
	}
}

// TestResultCacheStmtRunSnapshot covers the prepared-statement path:
// RunSnapshot against an old snapshot version-matches its own entry
// and never the live one.
func TestResultCacheStmtRunSnapshot(t *testing.T) {
	db := rcScratchDB(t)
	if err := db.Insert("kv", Row{types.NewInt(1), types.NewInt(10)}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare("select sum(v) as s from kv", rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	old := db.Snapshot()
	// Warm the live entry.
	if rows, err := st.Run(); err != nil || rows.Data[0][0].Int() != 10 {
		t.Fatalf("live run: %v %v", rows, err)
	}
	if err := db.Insert("kv", Row{types.NewInt(2), types.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	rows, err := st.RunSnapshot(context.Background(), old)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 10 {
		t.Fatalf("RunSnapshot sum = %d, want 10 (cache=%s)", got, rows.Cache)
	}
	rows, err = st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 15 {
		t.Fatalf("live run after insert = %d, want 15 (cache=%s)", got, rows.Cache)
	}
}

// TestResultCacheConcurrentWriterHammer races cached readers against a
// single writer. Each reader knows a lower bound on the committed row
// count at the moment it issues its query; any smaller answer is a
// stale cached read. Run with -race.
func TestResultCacheConcurrentWriterHammer(t *testing.T) {
	db := rcScratchDB(t)
	const inserts = 60
	var committed int64
	var cmu sync.Mutex

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cmu.Lock()
				floor := committed
				cmu.Unlock()
				rows, err := db.QueryCfg("select count(*) as n from kv", rcCfg())
				if err != nil {
					t.Error(err)
					return
				}
				if got := rows.Data[0][0].Int(); got < floor {
					t.Errorf("stale cached read: count %d < committed floor %d (cache=%s)",
						got, floor, rows.Cache)
					return
				}
			}
		}()
	}
	for i := 0; i < inserts; i++ {
		if err := db.Insert("kv", Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
		cmu.Lock()
		committed = int64(i + 1)
		cmu.Unlock()
	}
	close(stop)
	wg.Wait()

	rows, err := db.QueryCfg("select count(*) as n from kv", rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != inserts {
		t.Fatalf("final count = %d, want %d", got, inserts)
	}
}

// TestResultCacheSingleFlight launches identical concurrent cold
// queries; exactly one executes, the rest share its materialization.
func TestResultCacheSingleFlight(t *testing.T) {
	db := rcScratchDB(t)
	for i := 0; i < 200; i++ {
		if err := db.Insert("kv", Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	const q = "select v, count(*) as n from kv group by v"
	before := db.ResultCacheStats()

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows, err := db.QueryCfg(q, rcCfg())
			if err == nil && len(rows.Data) != 7 {
				err = fmt.Errorf("got %d groups, want 7", len(rows.Data))
			}
			errs[c] = err
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	after := db.ResultCacheStats()
	miss := after.Misses - before.Misses
	served := (after.Hits - before.Hits) + (after.Shared - before.Shared)
	if miss != 1 {
		t.Fatalf("misses = %d, want exactly 1 leader execution", miss)
	}
	if served != callers-1 {
		t.Fatalf("hits+shared = %d, want %d", served, callers-1)
	}
}

// TestResultCacheStreamReplay checks the streaming path replays a
// pinned whole-result entry and pins it for the stream's lifetime.
func TestResultCacheStreamReplay(t *testing.T) {
	db := sharedDB(t)
	const q = "select c_custkey, c_name from customer where c_custkey <= 40"
	want, err := db.QueryCfg(q, rcCfg()) // populate
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.QueryStream(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		row, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got, exp := row[0].Int(), want.Data[n][0].Int(); got != exp {
			t.Fatalf("row %d key = %d, want %d", n, got, exp)
		}
		n++
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(want.Data) {
		t.Fatalf("stream replayed %d rows, want %d", n, len(want.Data))
	}
}

// TestResultCacheExplainStatus checks the EXPLAIN preview line.
func TestResultCacheExplainStatus(t *testing.T) {
	db := sharedDB(t)
	const q = "select count(*) as n from region"
	out, err := db.Explain(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "result cache: off") {
		t.Fatalf("explain without cache lacks 'result cache: off':\n%s", out)
	}
	if _, err := db.QueryCfg(q, rcCfg()); err != nil {
		t.Fatal(err)
	}
	out, err = db.Explain(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "result cache: hit") {
		t.Fatalf("explain after warm run lacks 'result cache: hit':\n%s", out)
	}
}

// TestResultCacheMetricsSurface checks DB.Metrics carries the cache
// snapshot once a run has enabled it.
func TestResultCacheMetricsSurface(t *testing.T) {
	db := rcScratchDB(t)
	if db.Metrics().ResultCache != nil {
		t.Fatal("ResultCache metrics non-nil before any cached run")
	}
	if _, err := db.QueryCfg("select count(*) from kv", rcCfg()); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics().ResultCache
	if m == nil {
		t.Fatal("ResultCache metrics nil after a cached run")
	}
	if m.Misses == 0 || m.Entries == 0 {
		t.Fatalf("metrics = %+v, want recorded miss and live entry", m)
	}
}

// TestResultCacheSubPlanSharing is the MQO leg: two near-duplicate
// texts that differ only in an outer literal share the decorrelated
// aggregation subtree, so the second query's whole-result miss still
// reuses the first's materialized sub-plan.
func TestResultCacheSubPlanSharing(t *testing.T) {
	db := sharedDB(t)
	tmpl := "select c_custkey from customer where %d < (select sum(o_totalprice) from orders where o_custkey = c_custkey)"

	before := db.ResultCacheStats()
	qa := fmt.Sprintf(tmpl, 100000)
	qb := fmt.Sprintf(tmpl, 150000)
	wantA, err := db.QueryCfg(qa, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := db.QueryCfg(qb, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := db.QueryCfg(qa, rcSerialCfg())
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := db.QueryCfg(qb, rcSerialCfg())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := roundedFingerprint(gotA), roundedFingerprint(wantA); g != w {
		t.Fatalf("query A differs:\n%s\nvs\n%s", g, w)
	}
	if g, w := roundedFingerprint(gotB), roundedFingerprint(wantB); g != w {
		t.Fatalf("query B differs:\n%s\nvs\n%s", g, w)
	}
	after := db.ResultCacheStats()
	if after.SubHits == before.SubHits {
		t.Fatalf("no sub-plan hits recorded across near-duplicate texts (stats %+v -> %+v)",
			before, after)
	}
}

// TestResultCacheOrderedReplay: a cached ORDER BY result must replay
// in its original total order — both on a materialized warm hit and
// row by row from a Stream's pinned entry.
func TestResultCacheOrderedReplay(t *testing.T) {
	db := sharedDB(t)
	const q = `select o_orderkey, o_totalprice from orders
	           where o_totalprice > 2000 order by o_orderkey desc`
	cold, err := db.QueryCfg(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Data) < 10 {
		t.Fatalf("corpus too small: %d rows", len(cold.Data))
	}
	for i := 1; i < len(cold.Data); i++ {
		if cold.Data[i-1][0].Int() < cold.Data[i][0].Int() {
			t.Fatalf("cold result row %d out of order", i)
		}
	}
	warm, err := db.QueryCfg(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "result" {
		t.Fatalf("warm run cache = %q, want result", warm.Cache)
	}
	for i, row := range warm.Data {
		if row[0].Int() != cold.Data[i][0].Int() {
			t.Fatalf("warm replay row %d = %d, want %d (order lost in cache)",
				i, row[0].Int(), cold.Data[i][0].Int())
		}
	}
	st, err := db.QueryStream(q, rcCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := 0
	for {
		row, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if row[0].Int() != cold.Data[n][0].Int() {
			t.Fatalf("stream replay row %d = %d, want %d (order lost in pinned entry)",
				n, row[0].Int(), cold.Data[n][0].Int())
		}
		n++
	}
	if n != len(cold.Data) {
		t.Fatalf("stream replayed %d rows, want %d", n, len(cold.Data))
	}
}
