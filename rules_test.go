package orthoq

// Rule-level equivalence harness. Every rewrite rule — the Figure-4
// normalization identities and the §3/§4 cost-based transformations —
// is exercised three ways:
//
//   1. A witness query per rule proves the rule actually fires
//      (Rows.Rules reports the firing set), so a rule silently dying
//      is caught even while results stay correct via other paths.
//   2. For every rule a query fires, re-running the query with that
//      one rule disabled must return the same bag of rows: each rule
//      is individually load-bearing for performance only, never for
//      correctness. Runs alternate serial and parallel execution.
//   3. DisableRules is plan identity: the plan cache must never serve
//      a plan compiled under a different rule set, while the order of
//      the disabled-rule list must not matter.

import (
	"math/rand"
	"strings"
	"testing"
)

// ruleWitnesses maps each normalization rule to a query that fires it
// under the baseline config (empirically pinned; see rules in the
// comments). Cost-based rules are covered by the TPC-H leg below.
var ruleWitnesses = []struct {
	name  string
	sql   string
	rules []string // rules that must appear in the baseline firing set
}{
	{"scalar-agg", `select c_custkey from customer
		where 1000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)`,
		[]string{"ApplyScalarGroupBy", "ApplySelect", "ApplyToJoin"}},
	{"select-list", `select c_custkey,
		(select count(*) from orders where o_custkey = c_custkey) as n from customer`,
		[]string{"ApplyScalarGroupBy", "ApplyToJoin"}},
	{"exists", `select c_custkey from customer
		where exists (select 1 from orders where o_custkey = c_custkey)`,
		[]string{"ApplyProject", "ApplySelect", "ApplyToJoin"}},
	{"orderby-sub", `select c_custkey from customer
		where exists (select o_orderkey from orders where o_custkey = c_custkey order by o_orderkey)`,
		[]string{"ApplySort"}},
	{"outerjoin", `select c_custkey from customer left join orders on o_custkey = c_custkey
		where o_totalprice > 1000`,
		[]string{"SimplifyOuterJoin"}},
	// The decompose witnesses keep an inequality correlation that
	// stays a nested loop under every plan; the c_custkey cap bounds
	// the outer side so disabled-rule (partially correlated) runs stay
	// fast without changing which rules fire.
	{"corr-union", `select c_custkey from customer
		where c_custkey <= 40 and exists (select o_orderkey from orders where o_custkey = c_custkey
			union all select o_orderkey from orders where o_totalprice > c_acctbal)`,
		[]string{"ApplyDecompose", "ApplyUnion"}},
	{"corr-except", `select c_custkey from customer
		where c_custkey <= 40 and exists (select o_orderkey from orders where o_custkey = c_custkey
			except all select o_orderkey from orders where o_totalprice > c_acctbal)`,
		[]string{"ApplyDecompose", "ApplyDifference"}},
	{"corr-union-gb", `select c_custkey from customer
		where c_custkey <= 40 and exists (select o_custkey from orders where o_custkey = c_custkey group by o_custkey
			union all select o_custkey from orders where o_totalprice > c_acctbal)`,
		[]string{"ApplyGroupBy"}},
	{"corr-on-join", `select c_custkey from customer
		where c_custkey <= 40 and exists (select o_orderkey from orders join lineitem on l_orderkey = o_orderkey and l_quantity > c_acctbal
			union all select o_orderkey from orders where o_custkey = c_custkey)`,
		[]string{"ApplyJoin"}},
}

// neverAtThisScale are rules whose preconditions no witness or TPC-H
// query meets at test scale; their disable plumbing is checked as a
// strict no-op instead.
var neverAtThisScale = []string{
	"SplitGroupBy", "PushLocalGroupByBelowJoin", "PushSemiJoinBelowGroupBy",
	"IntroduceSegmentApply", "PushJoinBelowSegmentApply",
	// The TPC-H ORDER BYs sort aggregate outputs, never an indexed base
	// column, so sort elimination has nothing to remove (MergeJoinOrder
	// and StreamAggOrder do fire — Q20 and Q18 — and are covered by the
	// removability loop; EliminateSort firing is pinned in order_test.go).
	"EliminateSort",
}

func baselineRuleCfg() Config {
	cfg := DefaultConfig()
	cfg.RemoveClass2 = true // Figure-4 identities (5)-(7) included
	cfg.MaxSteps = 300
	return cfg
}

func hasRule(rules []string, name string) bool {
	for _, r := range rules {
		if r == name {
			return true
		}
	}
	return false
}

func TestRuleNamesWellFormed(t *testing.T) {
	names := RuleNames()
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Error("empty rule name")
		}
		if seen[n] {
			t.Errorf("duplicate rule name %q", n)
		}
		seen[n] = true
	}
	for _, w := range ruleWitnesses {
		for _, r := range w.rules {
			if !seen[r] {
				t.Errorf("witness %s expects unknown rule %q", w.name, r)
			}
		}
	}
	for _, r := range neverAtThisScale {
		if !seen[r] {
			t.Errorf("unknown rule %q in neverAtThisScale", r)
		}
	}
}

// TestRuleWitnessesFireAndAreRemovable is the core harness: each
// witness's expected rules fire, and disabling any fired rule — one at
// a time — keeps the result bag identical while removing the rule from
// the reported firing set.
func TestRuleWitnessesFireAndAreRemovable(t *testing.T) {
	db := sharedDB(t)
	cfg := baselineRuleCfg()
	run := 0
	for _, w := range ruleWitnesses {
		base, err := db.QueryCfg(w.sql, cfg)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		for _, want := range w.rules {
			if !hasRule(base.Rules, want) {
				t.Errorf("%s: rule %s did not fire (fired: %v)", w.name, want, base.Rules)
			}
		}
		for _, rule := range base.Rules {
			c := cfg
			c.DisableRules = []string{rule}
			if run++; run%2 == 0 {
				c.Parallelism = 4
			}
			got, err := db.QueryCfg(w.sql, c)
			if err != nil {
				t.Fatalf("%s without %s: %v", w.name, rule, err)
			}
			if hasRule(got.Rules, rule) {
				t.Errorf("%s: disabled rule %s still fired", w.name, rule)
			}
			if !sameBagApprox(base.Data, got.Data) {
				t.Errorf("%s: disabling %s changed the result (%d rows vs %d)\nbaseline rules: %v\ngot rules: %v",
					w.name, rule, len(base.Data), len(got.Data), base.Rules, got.Rules)
			}
		}
	}
}

// TestRuleEquivalenceTPCH runs the same removability property over the
// benchmark suite, and pins that the cost-based transformations the
// witnesses cannot reach (GroupBy pull-up, join rotation) fire
// somewhere in it.
func TestRuleEquivalenceTPCH(t *testing.T) {
	db := sharedDB(t)
	cfg := baselineRuleCfg()
	fired := map[string]bool{}
	run := 0
	for _, name := range TPCHQueryNames() {
		sql, _ := TPCHQuery(name)
		base, err := db.QueryCfg(sql, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range base.Rules {
			fired[r] = true
		}
		for _, rule := range base.Rules {
			c := cfg
			c.DisableRules = []string{rule}
			if run++; run%2 == 0 {
				c.Parallelism = 4
			}
			got, err := db.QueryCfg(sql, c)
			if err != nil {
				t.Fatalf("%s without %s: %v", name, rule, err)
			}
			if hasRule(got.Rules, rule) {
				t.Errorf("%s: disabled rule %s still fired", name, rule)
			}
			if !sameBagApprox(base.Data, got.Data) {
				t.Errorf("%s: disabling %s changed the result (%d rows vs %d)",
					name, rule, len(base.Data), len(got.Data))
			}
		}
	}
	for _, want := range []string{"PushGroupByBelowJoin", "PullGroupByAboveJoin",
		"SemiJoinToJoinDistinct", "CommuteJoin", "RotateJoin", "JoinToApply"} {
		if !fired[want] {
			t.Errorf("cost-based rule %s never fired across the TPC-H suite", want)
		}
	}
}

// TestDisableDormantRulesIsNoop: disabling rules whose preconditions a
// query does not meet must leave the compiled plan byte-identical.
func TestDisableDormantRulesIsNoop(t *testing.T) {
	db := sharedDB(t)
	cfg := baselineRuleCfg()
	q1, _ := TPCHQuery("Q1")
	for _, sql := range []string{q1, ruleWitnesses[0].sql} {
		base, err := db.QueryCfg(sql, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.DisableRules = append([]string{}, neverAtThisScale...)
		got, err := db.QueryCfg(sql, c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Plan != base.Plan {
			t.Errorf("disabling dormant rules changed the plan:\nbase:\n%s\ngot:\n%s", base.Plan, got.Plan)
		}
		if strings.Join(got.Rules, ",") != strings.Join(base.Rules, ",") {
			t.Errorf("dormant disable changed firing set: %v vs %v", got.Rules, base.Rules)
		}
	}
}

// TestRuleEquivalenceFuzz extends the removability property to random
// subquery shapes.
func TestRuleEquivalenceFuzz(t *testing.T) {
	db := sharedDB(t)
	cfg := baselineRuleCfg()
	cfg.MaxSteps = 200
	r := rand.New(rand.NewSource(41))
	run := 0
	for i := 0; i < 12; i++ {
		sql := randQuery(r)
		base, err := db.QueryCfg(sql, cfg)
		if err != nil {
			t.Fatalf("query %d: %v\nsql: %s", i, err, sql)
		}
		for _, rule := range base.Rules {
			c := cfg
			c.DisableRules = []string{rule}
			if run++; run%2 == 0 {
				c.Parallelism = 4
			}
			got, err := db.QueryCfg(sql, c)
			if err != nil {
				t.Fatalf("query %d without %s: %v\nsql: %s", i, rule, err, sql)
			}
			if hasRule(got.Rules, rule) {
				t.Errorf("query %d: disabled rule %s still fired\nsql: %s", i, rule, sql)
			}
			if !sameBagApprox(base.Data, got.Data) {
				t.Errorf("query %d: disabling %s changed the result (%d vs %d rows)\nsql: %s",
					i, rule, len(base.Data), len(got.Data), sql)
			}
		}
	}
}

// TestDisableRulesPlanIdentity: the disabled-rule set is part of the
// plan-cache key (different sets must not share a plan), but the
// list's order is not (a permuted list hits the same entry).
func TestDisableRulesPlanIdentity(t *testing.T) {
	db, err := OpenTPCH(0.001, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baselineRuleCfg()
	sql := ruleWitnesses[0].sql // fires ApplyScalarGroupBy et al.

	status := func(c Config) string {
		r, err := db.QueryCfg(sql, c)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cache
	}

	if got := status(cfg); got != "miss" {
		t.Fatalf("first compile: cache = %q, want miss", got)
	}
	if got := status(cfg); got != "hit" {
		t.Errorf("same config again: cache = %q, want hit", got)
	}
	c2 := cfg
	c2.DisableRules = []string{"ApplyScalarGroupBy", "CommuteJoin"}
	if got := status(c2); got != "miss" {
		t.Errorf("new disabled-rule set: cache = %q, want miss (plan identity)", got)
	}
	c3 := cfg
	c3.DisableRules = []string{"CommuteJoin", "ApplyScalarGroupBy"} // permuted
	if got := status(c3); got != "hit" {
		t.Errorf("permuted disabled-rule list: cache = %q, want hit (order-insensitive)", got)
	}
	if got := status(cfg); got != "hit" {
		t.Errorf("original config after disabled runs: cache = %q, want hit", got)
	}
}
