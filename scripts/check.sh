#!/bin/sh
# Repo-wide static checks and race-detector test run. This is the
# gate for PRs touching the parallel executor: the property tests in
# parallel_test.go execute every TPC-H benchmark query and the fuzz
# corpus at Parallelism 2/4/8 under -race.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
