#!/bin/sh
# Repo-wide static checks and race-detector test run. This is the
# gate for PRs touching the executor: the property tests in
# parallel_test.go and batch_test.go execute every TPC-H benchmark
# query and the fuzz corpus across Parallelism 1/2/4/8 and both pull
# modes (batch-compiled vs row-interpreted) under -race, and the
# observability suites (rules_test.go, obs_test.go) check rule-level
# equivalence and span/metrics invariants on the same corpus.
set -eu
cd "$(dirname "$0")/.."

# Lint: formatting drift fails fast with the offending files listed.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Fast smoke leg: batch-vs-row equivalence is the highest-signal
# regression check for executor changes — fail it early and clearly
# before the full suite runs.
go test -run TestBatchRowEquivalence -race .

# Apply-strategy smoke leg: the binding-batch experiment at a tiny
# scale factor verifies all three Apply strategies return identical
# results on the correlated workloads and that the trace counters
# (bindings/inner-execs) are populated.
go run ./cmd/orthoq-bench -exp apply -sf 0.002 -reps 1 -json > /dev/null

# Governance leg: the fault-injection property sweep, spill-vs-unbounded
# equivalence, and the goroutine/spill-file leak checks, under -race.
# These catch lifecycle bugs (stranded workers, unreleased memory,
# orphaned spill partitions) that the equivalence suites can't see.
go test -run 'TestTypedErrors|TestFaultInjection|TestSpill|TestStream|TestCancel|TestCacheSurvivesFailedRuns|TestStmtReusableAfterFailure' -race .

# Server leg: admission control, session/cursor lifecycle, and the
# wire front end under -race, plus the concurrent-writer publication
# tests (storage COW + the root Insert/Analyze-vs-Query hammer and
# snapshot serial-equivalence checks). The full ./... race run below
# covers these again; this leg fails fast with a focused signal.
go test -race ./internal/server ./internal/storage
go test -run 'TestInsertQueryRace|TestSnapshotSerialEquivalence|TestStmtRunSnapshot' -race .

# Result-cache leg: cached-vs-uncached equivalence over TPC-H and the
# fuzz corpus, the snapshot/version-key interplay, and the concurrent-
# writer invalidation hammer, under -race — a cache hit must be
# byte-identical to re-execution and a published write must make every
# older entry unreachable.
go test -run 'TestResultCache' -race .

# Order leg: the order-equivalence property suite (every TPC-H query
# and the order-sensitive corpus under forced merge/hash join,
# stream/hash agg, sort elimination on/off, batch/row, serial and
# parallel — identical multisets everywhere, identical sequences
# under ORDER BY) plus the sort-elision pins and the order-strategy
# spill/cache interplay tests, under -race. Then the order experiment
# at a tiny scale factor verifies each order-aware plan agrees with
# its order-blind baseline before timing it.
go test -run 'TestOrder|TestSortElided|TestMergeJoin|TestStreamAgg|TestForcedStreamAgg|TestTopSpanCounted|TestCacheStaleOrderedIndex|TestCacheOrderStrategySeparation' -race . ./internal/exec
go run ./cmd/orthoq-bench -exp order -sf 0.002 -reps 1 -json > /dev/null

# Result-cache wire smoke: identical concurrent traffic uncached vs
# cached through the HTTP front end with a writer hammering a scratch
# table — zero stale reads required (the run fails itself otherwise).
go run ./cmd/orthoq-bench -exp resultcache -sf 0.002 -sessions 8 -ops 5 -json > /dev/null

# Concurrency smoke leg: the full wire stack — 32 sessions of mixed
# read/write over HTTP with the admission pool sized below the offered
# load — must complete with zero errors (rejects are expected and
# counted, errors are not).
go run ./cmd/orthoq-bench -exp concurrency -sf 0.002 -sessions 32 -ops 5 -json > /dev/null

# Recovery leg: the WAL crash matrix (fault-injected crashes mid-append,
# mid-fsync, mid-checkpoint-rename; torn tails; CRC corruption; the
# concurrent group-commit kill) under -race, the durable end-to-end
# cycle/kill/TPC-H-equality tests, and the readiness gate. Then the
# real thing: build orthoq-server, write over the wire, kill -9, and
# verify every acknowledged write survives the restart.
go test -race ./internal/wal
go test -run 'TestDurable|TestNotDurable|TestReadiness|TestDrain' -race . ./internal/server
go test -run TestKill9RestartSmoke -race ./cmd/orthoq-server

# Full suite under -race. Run separately from coverage: the root and
# bench packages execute the whole TPC-H property corpus, and stacking
# cross-package coverage instrumentation on top of the race detector
# pushes them past a 30-minute per-package timeout. Race-only finishes
# in ~6 minutes; coverage-only in a few more.
go test -race -timeout 30m ./...

# Coverage across all packages (no race detector — see above). The
# cross-package profile is what credits the root integration suites
# with the internal/exec and internal/opt statements they exercise.
go test -timeout 30m -coverpkg=./... -coverprofile=coverage.out ./...

# Coverage ratchet: the floor only moves up. Raise it when a PR
# meaningfully grows coverage; never lower it to make a PR pass.
floor=75.0
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage: ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
}
