#!/bin/sh
# Repo-wide static checks and race-detector test run. This is the
# gate for PRs touching the executor: the property tests in
# parallel_test.go and batch_test.go execute every TPC-H benchmark
# query and the fuzz corpus across Parallelism 1/2/4/8 and both pull
# modes (batch-compiled vs row-interpreted) under -race.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...

# Fast smoke leg: batch-vs-row equivalence is the highest-signal
# regression check for executor changes — fail it early and clearly
# before the full suite runs.
go test -run TestBatchRowEquivalence -race .

# Governance leg: the fault-injection property sweep, spill-vs-unbounded
# equivalence, and the goroutine/spill-file leak checks, under -race.
# These catch lifecycle bugs (stranded workers, unreleased memory,
# orphaned spill partitions) that the equivalence suites can't see.
go test -run 'TestTypedErrors|TestFaultInjection|TestSpill|TestStream|TestCancel|TestCacheSurvivesFailedRuns|TestStmtReusableAfterFailure' -race .

go test -race ./...
