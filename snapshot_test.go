package orthoq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"orthoq/internal/sql/types"
)

func newRaceDB(t *testing.T) *DB {
	t.Helper()
	db := NewMemory()
	if err := db.CreateTable(&Table{
		Name: "acct",
		Columns: []Column{
			{Name: "id", Type: types.Int},
			{Name: "delta", Type: types.Int},
		},
		Key: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestInsertQueryRace hammers concurrent Insert batches, Analyze, and
// Query on one DB handle. Correctness invariant: every insert batch
// sums to zero, so any query — reading a consistent published version
// — must see sum(delta) = 0 and a row count that is a multiple of the
// batch size. Run with -race: this is the regression test for the
// Insert/Analyze vs Query publication race (rows and the stats-epoch
// bump now publish as one atomic step).
func TestInsertQueryRace(t *testing.T) {
	db := newRaceDB(t)
	const writers, batches, batchSize = 4, 30, 4

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: count and sum must always describe whole batches.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query("select count(*) as n, sum(delta) as s from acct")
				if err != nil {
					t.Error(err)
					return
				}
				n := rows.Data[0][0].Int()
				if n%batchSize != 0 {
					t.Errorf("torn read: count %d not a multiple of %d", n, batchSize)
					return
				}
				if n > 0 && rows.Data[0][1].Int() != 0 {
					t.Errorf("torn read: %d rows sum to %v, want 0", n, rows.Data[0][1])
					return
				}
			}
		}()
	}
	// A stats goroutine re-analyzes concurrently (epoch bumps race with
	// cached-plan lookups).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.Analyze()
			}
		}
	}()

	// Writers: zero-sum batches with globally unique ids.
	var writersWg sync.WaitGroup
	var next int64
	var idMu sync.Mutex
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func() {
			defer writersWg.Done()
			for b := 0; b < batches; b++ {
				idMu.Lock()
				base := next
				next += batchSize
				idMu.Unlock()
				batch := make([]Row, batchSize)
				for i := range batch {
					delta := int64(i + 1)
					if i == batchSize-1 {
						delta = -int64(batchSize-1) * int64(batchSize) / 2
					}
					batch[i] = Row{types.NewInt(base + int64(i)), types.NewInt(delta)}
				}
				if err := db.Insert("acct", batch...); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writersWg.Wait()
	close(stop)
	wg.Wait()

	rows, err := db.Query("select count(*) as n, sum(delta) as s from acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != writers*batches*batchSize {
		t.Errorf("final count = %d, want %d", got, writers*batches*batchSize)
	}
	if got := rows.Data[0][1].Int(); got != 0 {
		t.Errorf("final sum = %d, want 0", got)
	}
}

// TestSnapshotSerialEquivalence pins a snapshot and checks that
// queries against it return exactly what a serial execution before the
// concurrent writes returned — for both the materializing and the
// streaming entry points, while writers churn the live tables.
func TestSnapshotSerialEquivalence(t *testing.T) {
	db := newRaceDB(t)
	for i := 0; i < 40; i++ {
		if err := db.Insert("acct", Row{types.NewInt(int64(i)), types.NewInt(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	db.Analyze()

	queries := []string{
		"select count(*) as n, sum(delta) as s from acct",
		"select delta, count(*) as n from acct group by delta",
		"select id from acct where delta = 3",
	}
	serial := make([]string, len(queries))
	for i, q := range queries {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = rowsFingerprint(rows.Data)
	}
	snap := db.Snapshot()

	// A concurrent writer churns the table while we re-run against the
	// snapshot. progress closes after its first insert: on a single-core
	// runner the query loop can finish without ever yielding to the
	// writer, so the final liveness check waits on it explicitly.
	stop := make(chan struct{})
	progress := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Insert("acct", Row{types.NewInt(id), types.NewInt(7)}); err != nil {
				t.Error(err)
				return
			}
			if id == 1000 {
				close(progress)
			}
			id++
		}
	}()

	for round := 0; round < 20; round++ {
		for i, q := range queries {
			rows, err := db.QuerySnapshot(nil, q, DefaultConfig(), snap)
			if err != nil {
				t.Fatal(err)
			}
			if got := rowsFingerprint(rows.Data); got != serial[i] {
				t.Fatalf("round %d query %q: snapshot result diverged from serial run", round, q)
			}
			st, err := db.QueryStreamSnapshot(nil, q, DefaultConfig(), snap)
			if err != nil {
				t.Fatal(err)
			}
			var streamed []Row
			for {
				row, ok, err := st.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				streamed = append(streamed, row)
			}
			st.Close()
			if got := rowsFingerprint(streamed); got != serial[i] {
				t.Fatalf("round %d query %q: streamed snapshot result diverged", round, q)
			}
		}
	}
	<-progress
	close(stop)
	wg.Wait()

	// The live view moved on.
	rows, err := db.Query("select count(*) as n from acct")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() <= 40 {
		t.Error("writers made no progress during the equivalence check")
	}
}

// TestStmtRunSnapshot pins prepared-statement execution the same way.
func TestStmtRunSnapshot(t *testing.T) {
	db := newRaceDB(t)
	for i := 0; i < 10; i++ {
		db.Insert("acct", Row{types.NewInt(int64(i)), types.NewInt(1)})
	}
	db.Analyze()
	st, err := db.Prepare("select count(*) as n from acct", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	for i := 0; i < 5; i++ {
		db.Insert("acct", Row{types.NewInt(int64(100 + i)), types.NewInt(1)})
	}
	rows, err := st.RunSnapshot(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 10 {
		t.Errorf("snapshot stmt run = %d rows, want 10", got)
	}
	rows, err = st.RunSnapshot(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 15 {
		t.Errorf("live stmt run = %d rows, want 15", got)
	}
}

// rowsFingerprint renders rows order-independently.
func rowsFingerprint(rows []Row) string {
	keys := make([]string, len(rows))
	for i, row := range rows {
		keys[i] = fmt.Sprint(row)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
